package winnow

import "slices"

// Config holds the two winnowing parameters. With k-gram size k and window
// size w, winnowing guarantees that any shared substring of length at least
// w+k-1 produces at least one shared fingerprint.
type Config struct {
	// K is the k-gram (shingle) length in bytes.
	K int
	// Window is the number of consecutive k-gram hashes a minimum is
	// selected from.
	Window int
}

// DefaultConfig mirrors common winnowing deployments (MOSS uses similar
// magnitudes): 5-byte grams over an 8-hash window guarantee detection of
// shared substrings of 12+ bytes, well under the size of any EK component.
func DefaultConfig() Config { return Config{K: 5, Window: 8} }

// Histogram is a multiset of selected fingerprint hashes.
type Histogram map[uint64]int

// Reset clears the histogram in place, keeping its buckets allocated so a
// reused map reaches a steady state of zero allocations per fingerprint.
func (h Histogram) Reset() { clear(h) }

// Scratch holds the reusable deque state for streaming fingerprint
// computation. The zero value is ready to use. A Scratch is not safe for
// concurrent use; give each worker goroutine its own.
type Scratch struct {
	// pos and val back the monotonic deque as a ring buffer: pos holds
	// gram indices in increasing order, val their hashes in increasing
	// order. The front is the rightmost minimum of the current window.
	pos []int
	val []uint64
	// hbuf buffers one block of gram hashes: the hash stage fills it
	// laneWidth grams at a time with independent FNV chains, then the
	// deque stage consumes it sequentially. Splitting the stages keeps
	// the multiply-latency chains of neighboring grams overlapped
	// instead of serialized behind the deque bookkeeping.
	hbuf []uint64
}

// laneWidth is how many k=5 gram hashes the block fill computes per
// unrolled iteration: 8 independent FNV-1a chains over a shared 12-byte
// span.
const laneWidth = 8

// hashBlock is the number of gram hashes buffered per fill/consume round;
// 2 KiB of hashes stays comfortably within L1.
const hashBlock = 256

func (s *Scratch) hashes() []uint64 {
	if cap(s.hbuf) < hashBlock {
		s.hbuf = make([]uint64, hashBlock)
	}
	return s.hbuf[:hashBlock]
}

// ring ensures deque capacity for a window of w entries and returns the
// backing arrays. The deque transiently holds w+1 entries (a new hash is
// pushed before the stale front is evicted), hence the +1. Capacity is
// rounded up to a power of two so ring indices reduce with a mask instead
// of a modulo.
func (s *Scratch) ring(w int) ([]int, []uint64) {
	n := 1
	for n < w+1 {
		n <<= 1
	}
	if cap(s.pos) < n {
		s.pos = make([]int, n)
		s.val = make([]uint64, n)
	}
	return s.pos[:n], s.val[:n]
}

// Fingerprint computes the winnow histogram of text into a freshly
// allocated Histogram.
func (s *Scratch) Fingerprint(text string, cfg Config) Histogram {
	return s.AppendFingerprint(make(Histogram), text, cfg)
}

// AppendFingerprint adds the winnow fingerprints of text into h (allocating
// it when nil) and returns it. Documents shorter than one k-gram yield a
// single hash of the whole text so that tiny payload fragments still
// compare non-trivially. With a warm Scratch and a Reset histogram whose
// buckets have stabilized, the call performs no allocations.
func (s *Scratch) AppendFingerprint(h Histogram, text string, cfg Config) Histogram {
	if cfg.K <= 0 {
		cfg.K = DefaultConfig().K
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultConfig().Window
	}
	if h == nil {
		h = make(Histogram)
	}
	k, w := cfg.K, cfg.Window
	if len(text) < k {
		h[hashBytes(text)]++
		return h
	}
	n := len(text) - k + 1
	if n <= w {
		// Degenerate single window: the leftmost minimum (matching the
		// reference argmin tie-break).
		best := hashBytes(text[:k])
		for i := 1; i < n; i++ {
			if g := hashBytes(text[i : i+k]); g < best {
				best = g
			}
		}
		h[best]++
		return h
	}

	// Robust winnowing over a sliding window of w gram hashes. The deque
	// keeps candidate minima in increasing hash order; pushing a new hash
	// evicts every older entry with an equal-or-larger hash, so the front
	// is always the window minimum with ties broken toward the rightmost
	// occurrence — exactly argminRightmost over the materialized window.
	pos, val := s.ring(w)
	mask := len(pos) - 1
	head, size := 0, 0 // deque front index and entry count
	prevSel := -1
	fixed5 := k == 5 // DefaultConfig's gram size, block-hashed below
	hbuf := s.hashes()
	for base := 0; base < n; base += hashBlock {
		m := n - base
		if m > hashBlock {
			m = hashBlock
		}
		blk := hbuf[:m]
		if fixed5 {
			fillGrams5(blk, text, base)
		} else {
			for j := range blk {
				blk[j] = hashBytes(text[base+j : base+j+k])
			}
		}
		for j, g := range blk {
			i := base + j
			for size > 0 && val[(head+size-1)&mask] >= g {
				size--
			}
			tail := (head + size) & mask
			pos[tail], val[tail] = i, g
			size++
			start := i - w + 1
			if start < 0 {
				continue
			}
			if pos[head] < start {
				head = (head + 1) & mask
				size--
			}
			// Record each selected position once (robust winnowing: keep
			// the previous selection while it remains the window minimum).
			if sel := pos[head]; sel != prevSel {
				h[val[head]]++
				prevSel = sel
			}
		}
	}
	return h
}

// Fingerprint computes the winnow histogram of text with transient scratch
// state. Hot paths should reuse a Scratch (and a Reset histogram) instead.
func Fingerprint(text string, cfg Config) Histogram {
	var s Scratch
	return s.Fingerprint(text, cfg)
}

// fillGrams5 computes the k=5 gram hashes for positions base..base+len(dst)-1
// of text into dst. The caller guarantees base+len(dst)+4 <= len(text). The
// unrolled body advances laneWidth independent FNV-1a chains per iteration
// over a shared 12-byte span — no chain depends on another, so the CPU
// overlaps their xor-multiply latency instead of executing one gram's five
// multiplies back to back. Output is identical to calling hash5 per gram
// (pinned gram for gram against the scalar reference in the tests).
func fillGrams5(dst []uint64, text string, base int) {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	j := 0
	for ; j+laneWidth <= len(dst); j += laneWidth {
		t := text[base+j:]
		_ = t[laneWidth+3] // one bounds check for the whole span
		h0 := (uint64(offset) ^ uint64(t[0])) * prime
		h1 := (uint64(offset) ^ uint64(t[1])) * prime
		h2 := (uint64(offset) ^ uint64(t[2])) * prime
		h3 := (uint64(offset) ^ uint64(t[3])) * prime
		h4 := (uint64(offset) ^ uint64(t[4])) * prime
		h5 := (uint64(offset) ^ uint64(t[5])) * prime
		h6 := (uint64(offset) ^ uint64(t[6])) * prime
		h7 := (uint64(offset) ^ uint64(t[7])) * prime
		h0 = (h0 ^ uint64(t[1])) * prime
		h1 = (h1 ^ uint64(t[2])) * prime
		h2 = (h2 ^ uint64(t[3])) * prime
		h3 = (h3 ^ uint64(t[4])) * prime
		h4 = (h4 ^ uint64(t[5])) * prime
		h5 = (h5 ^ uint64(t[6])) * prime
		h6 = (h6 ^ uint64(t[7])) * prime
		h7 = (h7 ^ uint64(t[8])) * prime
		h0 = (h0 ^ uint64(t[2])) * prime
		h1 = (h1 ^ uint64(t[3])) * prime
		h2 = (h2 ^ uint64(t[4])) * prime
		h3 = (h3 ^ uint64(t[5])) * prime
		h4 = (h4 ^ uint64(t[6])) * prime
		h5 = (h5 ^ uint64(t[7])) * prime
		h6 = (h6 ^ uint64(t[8])) * prime
		h7 = (h7 ^ uint64(t[9])) * prime
		h0 = (h0 ^ uint64(t[3])) * prime
		h1 = (h1 ^ uint64(t[4])) * prime
		h2 = (h2 ^ uint64(t[5])) * prime
		h3 = (h3 ^ uint64(t[6])) * prime
		h4 = (h4 ^ uint64(t[7])) * prime
		h5 = (h5 ^ uint64(t[8])) * prime
		h6 = (h6 ^ uint64(t[9])) * prime
		h7 = (h7 ^ uint64(t[10])) * prime
		h0 = (h0 ^ uint64(t[4])) * prime
		h1 = (h1 ^ uint64(t[5])) * prime
		h2 = (h2 ^ uint64(t[6])) * prime
		h3 = (h3 ^ uint64(t[7])) * prime
		h4 = (h4 ^ uint64(t[8])) * prime
		h5 = (h5 ^ uint64(t[9])) * prime
		h6 = (h6 ^ uint64(t[10])) * prime
		h7 = (h7 ^ uint64(t[11])) * prime
		d := dst[j : j+laneWidth : j+laneWidth]
		d[0], d[1], d[2], d[3] = h0, h1, h2, h3
		d[4], d[5], d[6], d[7] = h4, h5, h6, h7
	}
	for ; j < len(dst); j++ {
		i := base + j
		dst[j] = hash5(text[i], text[i+1], text[i+2], text[i+3], text[i+4])
	}
}

// hash5 is hashBytes unrolled for the default 5-byte gram — identical
// output, no slice header or loop per gram.
func hash5(b0, b1, b2, b3, b4 byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := (uint64(offset) ^ uint64(b0)) * prime
	h = (h ^ uint64(b1)) * prime
	h = (h ^ uint64(b2)) * prime
	h = (h ^ uint64(b3)) * prime
	return (h ^ uint64(b4)) * prime
}

// hashBytes is 64-bit FNV-1a.
func hashBytes(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Total returns the histogram mass.
func (h Histogram) Total() int {
	n := 0
	for _, c := range h {
		n += c
	}
	return n
}

// Overlap computes the containment coefficient between two histograms: the
// shared mass divided by the mass of the smaller histogram, in [0, 1].
// This is the "sufficient overlap" quantity Kizzle thresholds per family;
// containment (rather than Jaccard) keeps the score high when a small
// unpacked payload is compared against a larger known corpus sample.
func Overlap(a, b Histogram) float64 {
	ta, tb := a.Total(), b.Total()
	if ta == 0 || tb == 0 {
		return 0
	}
	if ta > tb {
		a, b = b, a
		ta = tb
	}
	shared := 0
	for k, ca := range a {
		if cb, ok := b[k]; ok {
			if cb < ca {
				shared += cb
			} else {
				shared += ca
			}
		}
	}
	return float64(shared) / float64(ta)
}

// Merge adds other's counts into h.
func (h Histogram) Merge(other Histogram) {
	for k, c := range other {
		h[k] += c
	}
}

// Compact is a histogram in hash-sorted slice form. Overlap between two
// Compacts is a cache-friendly merge walk instead of a map iteration with
// per-key lookups — the corpus sweep in cluster labeling compares one
// prototype histogram against every stored corpus entry, which makes that
// walk the hot loop.
type Compact struct {
	hashes []uint64
	counts []int32
	total  int
}

// Compact converts the histogram to its sorted form.
func (h Histogram) Compact() Compact {
	c := Compact{
		hashes: make([]uint64, 0, len(h)),
		counts: make([]int32, len(h)),
	}
	for k := range h {
		c.hashes = append(c.hashes, k)
	}
	slices.Sort(c.hashes)
	for i, k := range c.hashes {
		n := h[k]
		c.counts[i] = int32(n)
		c.total += n
	}
	return c
}

// Total returns the compact histogram's mass.
func (c Compact) Total() int { return c.total }

// OverlapCompact computes the same containment coefficient as Overlap on
// the sorted forms.
func OverlapCompact(a, b Compact) float64 {
	if a.total == 0 || b.total == 0 {
		return 0
	}
	smaller := a.total
	if b.total < smaller {
		smaller = b.total
	}
	shared := 0
	i, j := 0, 0
	for i < len(a.hashes) && j < len(b.hashes) {
		ah, bh := a.hashes[i], b.hashes[j]
		switch {
		case ah == bh:
			ca, cb := a.counts[i], b.counts[j]
			if cb < ca {
				ca = cb
			}
			shared += int(ca)
			i++
			j++
		case ah < bh:
			i++
		default:
			j++
		}
	}
	return float64(shared) / float64(smaller)
}
