// Package winnow implements document fingerprinting by winnowing
// (Schleimer, Wilkerson, Aiken — SIGMOD 2003), the plagiarism-detection
// technique Kizzle uses to label clusters: the winnow histogram of an
// unpacked cluster prototype is compared against histograms of known
// unpacked exploit-kit corpora, and sufficient overlap labels the cluster
// with that kit's family.
package winnow

// Config holds the two winnowing parameters. With k-gram size k and window
// size w, winnowing guarantees that any shared substring of length at least
// w+k-1 produces at least one shared fingerprint.
type Config struct {
	// K is the k-gram (shingle) length in bytes.
	K int
	// Window is the number of consecutive k-gram hashes a minimum is
	// selected from.
	Window int
}

// DefaultConfig mirrors common winnowing deployments (MOSS uses similar
// magnitudes): 5-byte grams over an 8-hash window guarantee detection of
// shared substrings of 12+ bytes, well under the size of any EK component.
func DefaultConfig() Config { return Config{K: 5, Window: 8} }

// Histogram is a multiset of selected fingerprint hashes.
type Histogram map[uint64]int

// Fingerprint computes the winnow histogram of text. Documents shorter than
// one k-gram yield a single hash of the whole text so that tiny payload
// fragments still compare non-trivially.
func Fingerprint(text string, cfg Config) Histogram {
	if cfg.K <= 0 {
		cfg.K = DefaultConfig().K
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultConfig().Window
	}
	h := make(Histogram)
	if len(text) < cfg.K {
		h[hashBytes(text)]++
		return h
	}
	hashes := gramHashes(text, cfg.K)
	if len(hashes) <= cfg.Window {
		minIdx := argmin(hashes)
		h[hashes[minIdx]]++
		return h
	}
	// Robust winnowing: in each window select the minimum hash; if the
	// previous minimum is still in the window, keep it (record each
	// selected position once).
	prevSel := -1
	for start := 0; start+cfg.Window <= len(hashes); start++ {
		window := hashes[start : start+cfg.Window]
		rel := argminRightmost(window)
		abs := start + rel
		if abs != prevSel {
			h[hashes[abs]]++
			prevSel = abs
		}
	}
	return h
}

// gramHashes returns the rolling FNV-style hash of every k-gram.
func gramHashes(text string, k int) []uint64 {
	n := len(text) - k + 1
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = hashBytes(text[i : i+k])
	}
	return out
}

// hashBytes is 64-bit FNV-1a.
func hashBytes(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func argmin(xs []uint64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// argminRightmost returns the index of the minimum, breaking ties toward
// the rightmost occurrence (the standard winnowing tie-break, which
// minimizes re-selection).
func argminRightmost(xs []uint64) int {
	best := 0
	for i, x := range xs {
		if x <= xs[best] {
			best = i
		}
	}
	return best
}

// Total returns the histogram mass.
func (h Histogram) Total() int {
	n := 0
	for _, c := range h {
		n += c
	}
	return n
}

// Overlap computes the containment coefficient between two histograms: the
// shared mass divided by the mass of the smaller histogram, in [0, 1].
// This is the "sufficient overlap" quantity Kizzle thresholds per family;
// containment (rather than Jaccard) keeps the score high when a small
// unpacked payload is compared against a larger known corpus sample.
func Overlap(a, b Histogram) float64 {
	ta, tb := a.Total(), b.Total()
	if ta == 0 || tb == 0 {
		return 0
	}
	if ta > tb {
		a, b = b, a
		ta = tb
	}
	shared := 0
	for k, ca := range a {
		if cb, ok := b[k]; ok {
			if cb < ca {
				shared += cb
			} else {
				shared += ca
			}
		}
	}
	return float64(shared) / float64(ta)
}

// Merge adds other's counts into h.
func (h Histogram) Merge(other Histogram) {
	for k, c := range other {
		h[k] += c
	}
}
