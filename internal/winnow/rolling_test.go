package winnow

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"kizzle/internal/ekit"
)

// referenceFingerprint is the original two-pass implementation: materialize
// every k-gram hash, then scan each window with an argmin. The streaming
// deque implementation must reproduce it bit for bit; this copy exists only
// to pin that equivalence.
func referenceFingerprint(text string, cfg Config) Histogram {
	if cfg.K <= 0 {
		cfg.K = DefaultConfig().K
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultConfig().Window
	}
	h := make(Histogram)
	if len(text) < cfg.K {
		h[hashBytes(text)]++
		return h
	}
	hashes := make([]uint64, len(text)-cfg.K+1)
	for i := range hashes {
		hashes[i] = hashBytes(text[i : i+cfg.K])
	}
	if len(hashes) <= cfg.Window {
		best := 0
		for i, x := range hashes {
			if x < hashes[best] {
				best = i
			}
		}
		h[hashes[best]]++
		return h
	}
	prevSel := -1
	for start := 0; start+cfg.Window <= len(hashes); start++ {
		window := hashes[start : start+cfg.Window]
		rel := 0
		for i, x := range window {
			if x <= window[rel] {
				rel = i
			}
		}
		abs := start + rel
		if abs != prevSel {
			h[hashes[abs]]++
			prevSel = abs
		}
	}
	return h
}

func histogramsEqual(a, b Histogram) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestRollingMatchesReferenceRandom pins the streaming deque implementation
// against the reference across random texts and a sweep of (K, Window)
// shapes, including degenerate ones (single window, text shorter than one
// gram, heavy repetition that stresses the rightmost tie-break).
func TestRollingMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	configs := []Config{
		{}, // defaults
		{K: 1, Window: 1},
		{K: 1, Window: 2},
		{K: 3, Window: 4},
		{K: 5, Window: 8},
		{K: 8, Window: 16},
		{K: 4, Window: 31}, // non-power-of-two window
	}
	var s Scratch
	for _, cfg := range configs {
		for _, n := range []int{0, 1, 4, 5, 12, 13, 100, 1000, 5000} {
			// A 4-letter alphabet forces many equal gram hashes, the case
			// where the tie-break direction is observable.
			text := randomAlphabetText(rng, n, "ab{}")
			want := referenceFingerprint(text, cfg)
			got := s.Fingerprint(text, cfg)
			if !histogramsEqual(want, got) {
				t.Fatalf("cfg %+v len %d: rolling fingerprint diverged from reference", cfg, n)
			}
		}
		// Pathological runs: constant text means every window is all-ties.
		constant := strings.Repeat("a", 400)
		if !histogramsEqual(referenceFingerprint(constant, cfg), s.Fingerprint(constant, cfg)) {
			t.Fatalf("cfg %+v: diverged on constant text", cfg)
		}
	}
}

// TestRollingMatchesReferenceQuick drives the equivalence with
// testing/quick's generator, which produces adversarial unicode-heavy
// strings the handwritten cases miss.
func TestRollingMatchesReferenceQuick(t *testing.T) {
	var s Scratch
	f := func(text string) bool {
		return histogramsEqual(referenceFingerprint(text, DefaultConfig()),
			s.Fingerprint(text, DefaultConfig()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRollingMatchesReferenceEKCorpora pins equivalence on the real
// workload: every family's unpacked payload and packed sample across a
// week, plus benign documents — the exact texts labelClusters fingerprints.
func TestRollingMatchesReferenceEKCorpora(t *testing.T) {
	cfg := DefaultConfig()
	var s Scratch
	for day := ekit.AugustStart; day < ekit.AugustStart+7; day++ {
		for _, fam := range ekit.Families {
			payload := ekit.Payload(fam, day)
			if !histogramsEqual(referenceFingerprint(payload, cfg), s.Fingerprint(payload, cfg)) {
				t.Fatalf("%s day %d: diverged on unpacked payload", fam, day)
			}
			packed := ekit.Pack(fam, payload, day, 0)
			if !histogramsEqual(referenceFingerprint(packed, cfg), s.Fingerprint(packed, cfg)) {
				t.Fatalf("%s day %d: diverged on packed sample", fam, day)
			}
		}
	}
	for _, kind := range []string{ekit.BenignPluginDetect, ekit.BenignCharLoader, ekit.BenignHexLoader} {
		doc := ekit.BenignSample(kind, ekit.AugustStart, 0)
		if !histogramsEqual(referenceFingerprint(doc, cfg), s.Fingerprint(doc, cfg)) {
			t.Fatalf("benign %v: diverged", kind)
		}
	}
}

// TestAppendFingerprintAccumulates checks the into-histogram form both
// reuses the caller's map and accumulates counts like Merge would.
func TestAppendFingerprintAccumulates(t *testing.T) {
	var s Scratch
	text := strings.Repeat("document.write(unescape(payload));", 20)
	h := make(Histogram)
	if got := s.AppendFingerprint(h, text, DefaultConfig()); &got == nil || got.Total() == 0 {
		t.Fatal("append produced empty histogram")
	}
	once := h.Total()
	s.AppendFingerprint(h, text, DefaultConfig())
	if h.Total() != 2*once {
		t.Fatalf("second append total = %d, want %d", h.Total(), 2*once)
	}
	h.Reset()
	if h.Total() != 0 || len(h) != 0 {
		t.Fatal("Reset left entries behind")
	}
	if s.AppendFingerprint(nil, text, DefaultConfig()).Total() != once {
		t.Fatal("nil histogram not allocated")
	}
}

// TestFingerprintScratchZeroAlloc verifies the acceptance criterion: with a
// warm Scratch and a reused histogram the fingerprint path performs no
// allocations.
func TestFingerprintScratchZeroAlloc(t *testing.T) {
	var s Scratch
	text := strings.Repeat("var p = decode(buffer.split(d)); eval(p); ", 100)
	h := make(Histogram)
	// Warm up buckets and scratch.
	s.AppendFingerprint(h, text, DefaultConfig())
	allocs := testing.AllocsPerRun(20, func() {
		h.Reset()
		s.AppendFingerprint(h, text, DefaultConfig())
	})
	if allocs != 0 {
		t.Fatalf("warm fingerprint allocs/op = %v, want 0", allocs)
	}
}

// TestOverlapCompactMatchesOverlap pins the merge-walk containment against
// the map implementation bit for bit (both divide the same integer shared
// mass by the same integer minimum total).
func TestOverlapCompactMatchesOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultConfig()
	texts := []string{"", "ab", randomAlphabetText(rng, 300, "ab{};"), randomAlphabetText(rng, 5000, "abcdefg(){};=")}
	for i := 0; i < 30; i++ {
		texts = append(texts, randomAlphabetText(rng, 50+rng.Intn(2000), "abc{};=."))
	}
	hists := make([]Histogram, len(texts))
	compacts := make([]Compact, len(texts))
	for i, s := range texts {
		hists[i] = Fingerprint(s, cfg)
		compacts[i] = hists[i].Compact()
		if compacts[i].Total() != hists[i].Total() {
			t.Fatalf("compact total %d != histogram total %d", compacts[i].Total(), hists[i].Total())
		}
	}
	for i := range texts {
		for j := range texts {
			want := Overlap(hists[i], hists[j])
			got := OverlapCompact(compacts[i], compacts[j])
			if want != got {
				t.Fatalf("overlap(%d,%d): compact %v != map %v", i, j, got, want)
			}
		}
	}
	if OverlapCompact(Compact{}, compacts[2]) != 0 {
		t.Fatal("empty compact overlap should be 0")
	}
}

func randomAlphabetText(rng *rand.Rand, n int, alphabet string) string {
	var sb strings.Builder
	sb.Grow(n)
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}

// BenchmarkFingerprintScratch measures the streaming path with scratch and
// histogram reuse — the labelClusters configuration.
func BenchmarkFingerprintScratch(b *testing.B) {
	text := strings.Repeat("var payload = decode(buffer.split(delim)); eval(payload); ", 200)
	var s Scratch
	h := make(Histogram)
	s.AppendFingerprint(h, text, DefaultConfig())
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		s.AppendFingerprint(h, text, DefaultConfig())
	}
}

// TestFillGrams5MatchesScalar pins the 8-wide block gram hashing against
// the scalar FNV reference gram for gram: every lane of every block
// (including the ragged final lanes) must equal hashBytes of the same
// 5-byte gram.
func TestFillGrams5MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		// Lengths straddling lane boundaries: 5..5+3*laneWidth bytes.
		n := 5 + rng.Intn(3*laneWidth+1)
		text := randomAlphabetText(rng, n, "abcdefgh(){};=.,")
		grams := len(text) - 5 + 1
		dst := make([]uint64, grams)
		fillGrams5(dst, text, 0)
		for i := range dst {
			want := hashBytes(text[i : i+5])
			if dst[i] != want {
				t.Fatalf("len=%d gram=%d: got %#x want %#x", n, i, dst[i], want)
			}
		}
	}
}
