// Package winnow implements document fingerprinting by winnowing
// (Schleimer, Wilkerson, Aiken — SIGMOD 2003), the plagiarism-detection
// technique Kizzle uses to label clusters: the winnow histogram of an
// unpacked cluster prototype is compared against histograms of known
// unpacked exploit-kit corpora, and sufficient overlap labels the cluster
// with that kit's family.
//
// Fingerprinting is a single streaming pass: each k-gram hash is fed to a
// monotonic deque that maintains the window minimum in amortized O(1), so a
// document of n bytes costs O(n·k) hashing (k is a small constant) and O(n)
// selection, with zero allocations beyond the result histogram when a
// reusable Scratch is provided. Gram hashing itself runs eight grams per
// block iteration — a flat, branch-light inner loop over FNV lanes that
// the compiler keeps in registers — rather than one rolling hash per
// byte. The selection is identical, position for position, to
// materializing all gram hashes and scanning every window — the
// reference implementation the differential tests pin against, which
// also pin the block-hashed grams against the byte-at-a-time reference.
package winnow
