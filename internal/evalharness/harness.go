package evalharness

import (
	"fmt"

	"kizzle/internal/avsim"
	"kizzle/internal/contentcache"
	"kizzle/internal/ekit"
	"kizzle/internal/jstoken"
	"kizzle/internal/pipeline"
	"kizzle/internal/siggen"
	"kizzle/internal/sigmatch"
	"kizzle/internal/winnow"
)

// Config controls a harness run.
type Config struct {
	// Stream scales the grayware stream.
	Stream ekit.StreamConfig
	// Pipeline configures the Kizzle pipeline.
	Pipeline pipeline.Config
	// Days is the evaluation window (defaults to all of August 2014).
	Days []int
	// SeedDays is how many days of unpacked kit payloads before the
	// window seed the known-malware corpus.
	SeedDays int
	// SignatureTTL is how many days a Kizzle signature stays deployed
	// after it was last (re)generated. Kizzle regenerates signatures for
	// active clusters daily, so live kits are always covered; expiry
	// prunes stale and mislabeled signatures the way an operator would.
	SignatureTTL int
	// ReinforceThreshold guards the corpus feedback loop against slow
	// poisoning: a newly labeled centroid is added to the known-malware
	// corpus only if its cluster actually unpacked (benign libraries are
	// not packed) and its overlap with the existing corpus is at least
	// this strong. Borderline clusters still get signatures, but do not
	// redefine what the family looks like.
	ReinforceThreshold float64
	// CacheBytes bounds the content-addressed cache threaded across the
	// whole month, so day N+1 re-tokenizes, re-unpacks, and
	// re-fingerprints only content it has not seen on earlier days
	// (Figure 11's observation is that most kit bodies churn slowly).
	// 0 selects the 64 MiB default; negative disables the cache.
	CacheBytes int
}

// DefaultConfig returns the evaluation-scale configuration.
func DefaultConfig() Config {
	return Config{
		Stream:             ekit.DefaultStreamConfig(),
		Pipeline:           pipeline.DefaultConfig(),
		Days:               ekit.AugustDays(),
		SeedDays:           5,
		SignatureTTL:       7,
		ReinforceThreshold: 0.75,
	}
}

// DayStats is the bookkeeping for one evaluation day.
type DayStats struct {
	Day      int
	Samples  int
	Benign   int
	ByFamily map[string]int // malicious ground truth per family

	Clusters          int
	MaliciousClusters int
	UniqueSequences   int
	NoisePoints       int

	KizzleFP map[string]int // benign samples flagged, by flagged family
	AVFP     map[string]int
	KizzleFN map[string]int // malicious samples missed, by true family
	AVFN     map[string]int

	// SigLength is the deployed Kizzle signature length in characters
	// per family at end of day (Figure 12).
	SigLength map[string]int
	// NewSignature marks families whose signature changed today.
	NewSignature map[string]bool
	// Similarity is the winnow overlap of today's unpacked centroid with
	// the best match among all previous days' centroids (Figure 11).
	Similarity map[string]float64

	Pipeline pipeline.Stats
}

// kizzleFPTotal sums Kizzle false positives across families.
func (d DayStats) kizzleFPTotal() int { return sumMap(d.KizzleFP) }
func (d DayStats) avFPTotal() int     { return sumMap(d.AVFP) }
func (d DayStats) kizzleFNTotal() int { return sumMap(d.KizzleFN) }
func (d DayStats) avFNTotal() int     { return sumMap(d.AVFN) }
func (d DayStats) maliciousTotal() int {
	return sumMap(d.ByFamily)
}

func sumMap(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// MonthResult aggregates a full harness run.
type MonthResult struct {
	Days []DayStats
	// MonthCache records whether one content cache spanned all days (the
	// per-day hit numbers are otherwise from per-run transient caches).
	MonthCache bool
}

// deployedSig tracks one Kizzle signature in the rolling database.
type deployedSig struct {
	sig     siggen.Signature
	lastDay int
}

// Run executes the evaluation.
func Run(cfg Config) (*MonthResult, error) {
	if len(cfg.Days) == 0 {
		cfg.Days = ekit.AugustDays()
	}
	if cfg.SeedDays <= 0 {
		cfg.SeedDays = 5
	}
	if cfg.SignatureTTL <= 0 {
		cfg.SignatureTTL = 7
	}
	if cfg.ReinforceThreshold <= 0 {
		cfg.ReinforceThreshold = 0.75
	}
	stream, err := ekit.NewStream(cfg.Stream)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	// One content cache spans the month: the pipeline and the Figure 11
	// bookkeeping below share it, so every stage pays only for novel
	// content.
	if cfg.CacheBytes >= 0 && cfg.Pipeline.Cache == nil {
		cfg.Pipeline.Cache = contentcache.New(cfg.CacheBytes)
	}

	// Seed the corpus with known unpacked kit payloads ("Kizzle needs to
	// be seeded with exploit kits").
	corpus := pipeline.NewCorpus(cfg.Pipeline.Winnow, 64)
	first := cfg.Days[0]
	for d := first - cfg.SeedDays; d < first; d++ {
		for _, fam := range ekit.Families {
			corpus.Add(fam.String(), ekit.Payload(fam, d))
		}
	}

	av := avsim.NewEngine(avsim.August2014History())
	sigDB := make(map[string]*deployedSig)
	// centroids holds every previous day's unpacked malicious centroids
	// per family, for the Figure 11 similarity series.
	centroids := make(map[string][]winnow.Histogram)
	for d := first - cfg.SeedDays; d < first; d++ {
		for _, fam := range ekit.Families {
			centroids[fam.String()] = append(centroids[fam.String()],
				winnow.Fingerprint(ekit.Payload(fam, d), cfg.Pipeline.Winnow))
		}
	}

	res := &MonthResult{
		Days:       make([]DayStats, 0, len(cfg.Days)),
		MonthCache: cfg.Pipeline.Cache != nil,
	}
	for _, day := range cfg.Days {
		ds, err := runDay(day, stream, corpus, av, sigDB, centroids, cfg)
		if err != nil {
			return nil, fmt.Errorf("day %s: %w", ekit.Label(day), err)
		}
		res.Days = append(res.Days, ds)
	}
	return res, nil
}

func runDay(day int, stream *ekit.Stream, corpus *pipeline.Corpus, av *avsim.Engine,
	sigDB map[string]*deployedSig, centroids map[string][]winnow.Histogram, cfg Config) (DayStats, error) {

	ds := DayStats{
		Day:          day,
		ByFamily:     make(map[string]int),
		KizzleFP:     make(map[string]int),
		AVFP:         make(map[string]int),
		KizzleFN:     make(map[string]int),
		AVFN:         make(map[string]int),
		SigLength:    make(map[string]int),
		NewSignature: make(map[string]bool),
		Similarity:   make(map[string]float64),
	}
	samples := stream.Day(day)
	ds.Samples = len(samples)

	// The scanner deployed while today's traffic arrives: yesterday's
	// signature set. Early (flip-day trickle) samples are scanned with
	// it; everything else benefits from Kizzle's same-day turnaround.
	before, err := buildScanner(sigDB, day, cfg.SignatureTTL)
	if err != nil {
		return ds, err
	}

	// Run the pipeline on today's batch.
	inputs := make([]pipeline.Input, len(samples))
	for i, s := range samples {
		inputs[i] = pipeline.Input{ID: s.ID, Content: s.Content}
	}
	result, err := pipeline.Process(inputs, corpus, cfg.Pipeline)
	if err != nil {
		return ds, err
	}
	ds.Pipeline = result.Stats
	ds.Clusters = result.Stats.Clusters
	ds.MaliciousClusters = result.Stats.Malicious
	ds.UniqueSequences = result.Stats.UniqueSequences
	ds.NoisePoints = result.Stats.NoisePoints

	// Figure 11 similarity: compare today's malicious centroids against
	// the best previous-day match, then feed today's centroids forward.
	// Fingerprints come from the shared content cache — the pipeline's
	// labeling stage has already fingerprinted every unpacked prototype,
	// so these lookups are hits.
	seenToday := make(map[string]bool)
	for _, cl := range result.Clusters {
		if cl.Label == "" {
			continue
		}
		hist := pipeline.FingerprintCached(cfg.Pipeline.Cache, nil, cl.Unpacked, cfg.Pipeline.Winnow)
		best := 0.0
		for _, prev := range centroids[cl.Label] {
			if o := winnow.Overlap(hist, prev); o > best {
				best = o
			}
		}
		if !seenToday[cl.Label] || best > ds.Similarity[cl.Label] {
			ds.Similarity[cl.Label] = best
		}
		seenToday[cl.Label] = true
	}
	for _, cl := range result.Clusters {
		if cl.Label == "" {
			continue
		}
		centroids[cl.Label] = append(centroids[cl.Label],
			pipeline.FingerprintCached(cfg.Pipeline.Cache, nil, cl.Unpacked, cfg.Pipeline.Winnow))
		// Anti-poisoning gate on the corpus feedback loop.
		if cl.UnpackMethod != "" && cl.Overlap >= cfg.ReinforceThreshold {
			corpus.Add(cl.Label, cl.Unpacked)
		}
	}

	// Deploy today's signatures.
	for _, sig := range result.Signatures {
		key := sig.Family + "\x00" + sig.Regex()
		if existing, ok := sigDB[key]; ok {
			existing.lastDay = day
		} else {
			sigDB[key] = &deployedSig{sig: sig, lastDay: day}
			ds.NewSignature[sig.Family] = true
		}
	}
	after, err := buildScanner(sigDB, day, cfg.SignatureTTL)
	if err != nil {
		return ds, err
	}

	// Figure 12: deployed signature length per family (longest live).
	for _, d := range sigDB {
		if d.lastDay > day-cfg.SignatureTTL {
			if l := d.sig.Length(); l > ds.SigLength[d.sig.Family] {
				ds.SigLength[d.sig.Family] = l
			}
		}
	}

	// Scan the day's traffic with both engines. One lexing scratch serves
	// the whole day: scanners read the token stream only during the call.
	var lexScratch jstoken.Scratch
	for _, s := range samples {
		tokens := lexScratch.LexDocumentInto(s.Content)
		scanner := after
		if s.Family.Malicious() && ekit.IsVersionFlipDay(s.Family, day) &&
			s.Variant == ekit.VersionIndex(s.Family, day) {
			// Flip-day trickle: this sample hit browsers before
			// Kizzle's same-day update shipped.
			scanner = before
		}
		kMatches := scanner.ScanTokens(tokens)
		avFams := av.Scan(s.Content, day)

		if s.Family.Malicious() {
			fam := s.Family.String()
			ds.ByFamily[fam]++
			if len(kMatches) == 0 {
				ds.KizzleFN[fam]++
			}
			if len(avFams) == 0 {
				ds.AVFN[fam]++
			}
		} else {
			ds.Benign++
			if len(kMatches) > 0 {
				ds.KizzleFP[kMatches[0].Family]++
			}
			if len(avFams) > 0 {
				ds.AVFP[avFams[0]]++
			}
		}
	}
	return ds, nil
}

// buildScanner compiles the live signature set as of the start of day.
func buildScanner(sigDB map[string]*deployedSig, day, ttl int) (*sigmatch.Scanner, error) {
	scanner, err := sigmatch.NewScanner(nil)
	if err != nil {
		return nil, err
	}
	for _, d := range sigDB {
		if d.lastDay > day-ttl {
			if err := scanner.Add(d.sig); err != nil {
				return nil, fmt.Errorf("deploy %s signature: %w", d.sig.Family, err)
			}
		}
	}
	return scanner, nil
}

// Totals aggregates Figure 14's absolute counts.
type Totals struct {
	Family      string
	GroundTruth int
	AVFP        int
	AVFN        int
	KizzleFP    int
	KizzleFN    int
}

// FamilyTotals computes the Figure 14 rows (plus the sum row).
func (r *MonthResult) FamilyTotals() []Totals {
	families := []string{"Nuclear", "Sweet Orange", "Angler", "RIG"}
	out := make([]Totals, 0, len(families)+1)
	var sum Totals
	sum.Family = "Sum"
	for _, fam := range families {
		t := Totals{Family: fam}
		for _, d := range r.Days {
			t.GroundTruth += d.ByFamily[fam]
			t.AVFP += d.AVFP[fam]
			t.AVFN += d.AVFN[fam]
			t.KizzleFP += d.KizzleFP[fam]
			t.KizzleFN += d.KizzleFN[fam]
		}
		sum.GroundTruth += t.GroundTruth
		sum.AVFP += t.AVFP
		sum.AVFN += t.AVFN
		sum.KizzleFP += t.KizzleFP
		sum.KizzleFN += t.KizzleFN
		out = append(out, t)
	}
	return append(out, sum)
}

// Rates summarizes month-level FP/FN rates for both engines. FP rates are
// relative to all scanned samples, FN rates to malicious samples — the
// quantities behind the paper's headline "false-positive rates for Kizzle
// are under 0.03%, while the false-negative rates are under 5%".
type Rates struct {
	KizzleFP, KizzleFN float64
	AVFP, AVFN         float64
}

// MonthRates computes the aggregate rates.
func (r *MonthResult) MonthRates() Rates {
	var samples, malicious int
	var kfp, kfn, afp, afn int
	for _, d := range r.Days {
		samples += d.Samples
		malicious += d.maliciousTotal()
		kfp += d.kizzleFPTotal()
		kfn += d.kizzleFNTotal()
		afp += d.avFPTotal()
		afn += d.avFNTotal()
	}
	if samples == 0 || malicious == 0 {
		return Rates{}
	}
	return Rates{
		KizzleFP: float64(kfp) / float64(samples),
		KizzleFN: float64(kfn) / float64(malicious),
		AVFP:     float64(afp) / float64(samples),
		AVFN:     float64(afn) / float64(malicious),
	}
}
