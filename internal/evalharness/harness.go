package evalharness

import (
	"fmt"
	"strings"

	"kizzle/internal/avsim"
	"kizzle/internal/contentcache"
	"kizzle/internal/ekit"
	"kizzle/internal/ingest"
	"kizzle/internal/jstoken"
	"kizzle/internal/phishkit"
	"kizzle/internal/pipeline"
	"kizzle/internal/siggen"
	"kizzle/internal/sigmatch"
	"kizzle/internal/winnow"
)

// Config controls a harness run.
type Config struct {
	// Stream scales the grayware stream.
	Stream ekit.StreamConfig
	// Pipeline configures the Kizzle pipeline.
	Pipeline pipeline.Config
	// Days is the evaluation window (defaults to all of August 2014).
	Days []int
	// SeedDays is how many days of unpacked kit payloads before the
	// window seed the known-malware corpus.
	SeedDays int
	// SignatureTTL is how many days a Kizzle signature stays deployed
	// after it was last (re)generated. Kizzle regenerates signatures for
	// active clusters daily, so live kits are always covered; expiry
	// prunes stale and mislabeled signatures the way an operator would.
	SignatureTTL int
	// ReinforceThreshold guards the corpus feedback loop against slow
	// poisoning: a newly labeled centroid is added to the known-malware
	// corpus only if its cluster actually unpacked (benign libraries are
	// not packed) and its overlap with the existing corpus is at least
	// this strong. Borderline clusters still get signatures, but do not
	// redefine what the family looks like.
	ReinforceThreshold float64
	// CacheBytes bounds the content-addressed cache threaded across the
	// whole month, so day N+1 re-tokenizes, re-unpacks, and
	// re-fingerprints only content it has not seen on earlier days
	// (Figure 11's observation is that most kit bodies churn slowly).
	// 0 selects the 64 MiB default; negative disables the cache.
	CacheBytes int
	// Profile selects the ingest profile the stream is compiled with
	// ("" or "js" keeps the default JS exploit-kit front-end). A non-js
	// profile namespaces every corpus family "profile/family", so the
	// per-workload counters in FormatPerf attribute the run correctly.
	Profile string
}

// namespace returns the family namespace this run compiles under ("" for
// the default JS workload).
func (c Config) namespace() string {
	if c.Profile == "" || c.Profile == "js" {
		return ""
	}
	return c.Profile
}

// qualify maps a bare ground-truth family name to the label the corpus
// (and therefore clustering and signatures) carries for it in this run.
func (c Config) qualify(fam string) string {
	if ns := c.namespace(); ns != "" {
		return ns + "/" + fam
	}
	return fam
}

// workloadOf maps a family label to its workload namespace ("js" for
// bare, pre-profile names).
func workloadOf(family string) string {
	if i := strings.IndexByte(family, '/'); i >= 0 {
		return family[:i]
	}
	return "js"
}

// DefaultConfig returns the evaluation-scale configuration.
func DefaultConfig() Config {
	return Config{
		Stream:             ekit.DefaultStreamConfig(),
		Pipeline:           pipeline.DefaultConfig(),
		Days:               ekit.AugustDays(),
		SeedDays:           5,
		SignatureTTL:       7,
		ReinforceThreshold: 0.75,
	}
}

// DayStats is the bookkeeping for one evaluation day.
type DayStats struct {
	Day      int
	Samples  int
	Benign   int
	ByFamily map[string]int // malicious ground truth per family

	Clusters          int
	MaliciousClusters int
	UniqueSequences   int
	NoisePoints       int

	KizzleFP map[string]int // benign samples flagged, by flagged family
	AVFP     map[string]int
	KizzleFN map[string]int // malicious samples missed, by true family
	AVFN     map[string]int

	// SigLength is the deployed Kizzle signature length in characters
	// per family at end of day (Figure 12).
	SigLength map[string]int
	// NewSignature marks families whose signature changed today.
	NewSignature map[string]bool
	// WorkloadClusters counts today's labeled (family-attributed) clusters
	// per workload namespace — the per-workload share of Clusters once two
	// corpora share a fleet.
	WorkloadClusters map[string]int
	// Similarity is the winnow overlap of today's unpacked centroid with
	// the best match among all previous days' centroids (Figure 11).
	Similarity map[string]float64

	Pipeline pipeline.Stats
}

// kizzleFPTotal sums Kizzle false positives across families.
func (d DayStats) kizzleFPTotal() int { return sumMap(d.KizzleFP) }
func (d DayStats) avFPTotal() int     { return sumMap(d.AVFP) }
func (d DayStats) kizzleFNTotal() int { return sumMap(d.KizzleFN) }
func (d DayStats) avFNTotal() int     { return sumMap(d.AVFN) }
func (d DayStats) maliciousTotal() int {
	return sumMap(d.ByFamily)
}

func sumMap(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// MonthResult aggregates a full harness run.
type MonthResult struct {
	Days []DayStats
	// MonthCache records whether one content cache spanned all days (the
	// per-day hit numbers are otherwise from per-run transient caches).
	MonthCache bool
	// Namespace is the family namespace the run compiled under ("" for
	// the default JS workload); figure lookups qualify ground-truth
	// family names through it.
	Namespace string
}

// qualify maps a bare ground-truth family name to the label this run's
// corpus carried for it.
func (r *MonthResult) qualify(fam string) string {
	if r.Namespace == "" {
		return fam
	}
	return r.Namespace + "/" + fam
}

// deployedSig tracks one Kizzle signature in the rolling database.
type deployedSig struct {
	sig     siggen.Signature
	lastDay int
}

// evalSample is the workload-neutral view of one stream document the scan
// loop consumes; each generator adapts its own Sample type into it.
type evalSample struct {
	ID      string
	Family  string // bare ground-truth family; "" for benign pages
	Content string
	// trickle marks a flip-day sample that hit browsers before Kizzle's
	// same-day signature update shipped (old signatures must cover it).
	trickle bool
}

// workload is one synthetic stream adapted to the harness: the daily
// sample feed plus the family inventory that seeds the known corpus.
type workload struct {
	day      func(day int) []evalSample
	families []string
	payload  func(fam string, day int) string
}

// jsWorkload adapts the exploit-kit stream (the default workload).
func jsWorkload(cfg ekit.StreamConfig) (workload, error) {
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		return workload{}, err
	}
	fams := make([]string, len(ekit.Families))
	byName := make(map[string]ekit.Family, len(ekit.Families))
	for i, f := range ekit.Families {
		fams[i] = f.String()
		byName[f.String()] = f
	}
	return workload{
		day: func(day int) []evalSample {
			samples := stream.Day(day)
			out := make([]evalSample, len(samples))
			for i, s := range samples {
				es := evalSample{ID: s.ID, Content: s.Content}
				if s.Family.Malicious() {
					es.Family = s.Family.String()
					es.trickle = ekit.IsVersionFlipDay(s.Family, day) &&
						s.Variant == ekit.VersionIndex(s.Family, day)
				}
				out[i] = es
			}
			return out
		},
		families: fams,
		payload:  func(fam string, day int) string { return ekit.Payload(byName[fam], day) },
	}, nil
}

// webkitWorkload adapts the phishing-kit stream. Its generator deploys
// each day's kit version to the whole day's traffic (no flip-day
// trickle), so every sample is scanned with the same-day signature set.
func webkitWorkload(benignPerDay int) (workload, error) {
	cfg := phishkit.DefaultStreamConfig()
	if benignPerDay > 0 {
		cfg.BenignPerDay = benignPerDay
	}
	stream, err := phishkit.NewStream(cfg)
	if err != nil {
		return workload{}, err
	}
	fams := make([]string, len(phishkit.Families))
	byName := make(map[string]phishkit.Family, len(phishkit.Families))
	for i, f := range phishkit.Families {
		fams[i] = f.String()
		byName[f.String()] = f
	}
	return workload{
		day: func(day int) []evalSample {
			samples := stream.Day(day)
			out := make([]evalSample, len(samples))
			for i, s := range samples {
				es := evalSample{ID: s.ID, Content: s.Content}
				if s.Family.Malicious() {
					es.Family = s.Family.String()
				}
				out[i] = es
			}
			return out
		},
		families: fams,
		payload:  func(fam string, day int) string { return phishkit.Payload(byName[fam], day) },
	}, nil
}

// Run executes the evaluation.
func Run(cfg Config) (*MonthResult, error) {
	if len(cfg.Days) == 0 {
		cfg.Days = ekit.AugustDays()
	}
	if cfg.SeedDays <= 0 {
		cfg.SeedDays = 5
	}
	if cfg.SignatureTTL <= 0 {
		cfg.SignatureTTL = 7
	}
	if cfg.ReinforceThreshold <= 0 {
		cfg.ReinforceThreshold = 0.75
	}
	var w workload
	var err error
	switch ns := cfg.namespace(); ns {
	case "":
		w, err = jsWorkload(cfg.Stream)
	case "webkit":
		// The webkit stream inherits the scale knob but keeps its own
		// per-kit volumes.
		w, err = webkitWorkload(cfg.Stream.BenignPerDay)
	default:
		if _, ok := ingest.Lookup(ns); !ok {
			return nil, fmt.Errorf("unknown ingest profile %q (registered: %s)",
				ns, strings.Join(ingest.IDs(), ", "))
		}
		return nil, fmt.Errorf("ingest profile %q has no evaluation stream", ns)
	}
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if ns := cfg.namespace(); ns != "" {
		prof, ok := ingest.Lookup(ns)
		if !ok {
			return nil, fmt.Errorf("unknown ingest profile %q (registered: %s)",
				ns, strings.Join(ingest.IDs(), ", "))
		}
		cfg.Pipeline.Profile = prof
	}
	// One content cache spans the month: the pipeline and the Figure 11
	// bookkeeping below share it, so every stage pays only for novel
	// content.
	if cfg.CacheBytes >= 0 && cfg.Pipeline.Cache == nil {
		cfg.Pipeline.Cache = contentcache.New(cfg.CacheBytes)
	}

	// Seed the corpus with known unpacked kit payloads ("Kizzle needs to
	// be seeded with exploit kits").
	corpus := pipeline.NewCorpus(cfg.Pipeline.Winnow, 64)
	first := cfg.Days[0]
	for d := first - cfg.SeedDays; d < first; d++ {
		for _, fam := range w.families {
			corpus.Add(cfg.qualify(fam), w.payload(fam, d))
		}
	}

	avHistory := avsim.August2014History()
	if cfg.namespace() == "webkit" {
		avHistory = avsim.WebkitHistory()
	}
	av := avsim.NewEngine(avHistory)
	sigDB := make(map[string]*deployedSig)
	// centroids holds every previous day's unpacked malicious centroids
	// per family, for the Figure 11 similarity series.
	centroids := make(map[string][]winnow.Histogram)
	for d := first - cfg.SeedDays; d < first; d++ {
		for _, fam := range w.families {
			key := cfg.qualify(fam)
			centroids[key] = append(centroids[key],
				winnow.Fingerprint(w.payload(fam, d), cfg.Pipeline.Winnow))
		}
	}

	res := &MonthResult{
		Days:       make([]DayStats, 0, len(cfg.Days)),
		MonthCache: cfg.Pipeline.Cache != nil,
		Namespace:  cfg.namespace(),
	}
	for _, day := range cfg.Days {
		ds, err := runDay(day, w, corpus, av, sigDB, centroids, cfg)
		if err != nil {
			return nil, fmt.Errorf("day %s: %w", ekit.Label(day), err)
		}
		res.Days = append(res.Days, ds)
	}
	return res, nil
}

func runDay(day int, w workload, corpus *pipeline.Corpus, av *avsim.Engine,
	sigDB map[string]*deployedSig, centroids map[string][]winnow.Histogram, cfg Config) (DayStats, error) {

	ds := DayStats{
		Day:          day,
		ByFamily:     make(map[string]int),
		KizzleFP:     make(map[string]int),
		AVFP:         make(map[string]int),
		KizzleFN:     make(map[string]int),
		AVFN:         make(map[string]int),
		SigLength:    make(map[string]int),
		NewSignature: make(map[string]bool),
		Similarity:   make(map[string]float64),

		WorkloadClusters: make(map[string]int),
	}
	samples := w.day(day)
	ds.Samples = len(samples)

	// The scanner deployed while today's traffic arrives: yesterday's
	// signature set. Early (flip-day trickle) samples are scanned with
	// it; everything else benefits from Kizzle's same-day turnaround.
	before, err := buildScanner(sigDB, day, cfg.SignatureTTL)
	if err != nil {
		return ds, err
	}

	// Run the pipeline on today's batch.
	inputs := make([]pipeline.Input, len(samples))
	for i, s := range samples {
		inputs[i] = pipeline.Input{ID: s.ID, Content: s.Content}
	}
	result, err := pipeline.Process(inputs, corpus, cfg.Pipeline)
	if err != nil {
		return ds, err
	}
	ds.Pipeline = result.Stats
	ds.Clusters = result.Stats.Clusters
	ds.MaliciousClusters = result.Stats.Malicious
	ds.UniqueSequences = result.Stats.UniqueSequences
	ds.NoisePoints = result.Stats.NoisePoints

	// Figure 11 similarity: compare today's malicious centroids against
	// the best previous-day match, then feed today's centroids forward.
	// Fingerprints come from the shared content cache — the pipeline's
	// labeling stage has already fingerprinted every unpacked prototype,
	// so these lookups are hits.
	seenToday := make(map[string]bool)
	for _, cl := range result.Clusters {
		if cl.Label == "" {
			continue
		}
		hist := pipeline.FingerprintCached(cfg.Pipeline.Cache, nil, cl.Unpacked, cfg.Pipeline.Winnow)
		best := 0.0
		for _, prev := range centroids[cl.Label] {
			if o := winnow.Overlap(hist, prev); o > best {
				best = o
			}
		}
		if !seenToday[cl.Label] || best > ds.Similarity[cl.Label] {
			ds.Similarity[cl.Label] = best
		}
		seenToday[cl.Label] = true
	}
	for _, cl := range result.Clusters {
		if cl.Label == "" {
			continue
		}
		ds.WorkloadClusters[workloadOf(cl.Label)]++
		centroids[cl.Label] = append(centroids[cl.Label],
			pipeline.FingerprintCached(cfg.Pipeline.Cache, nil, cl.Unpacked, cfg.Pipeline.Winnow))
		// Anti-poisoning gate on the corpus feedback loop.
		if cl.UnpackMethod != "" && cl.Overlap >= cfg.ReinforceThreshold {
			corpus.Add(cl.Label, cl.Unpacked)
		}
	}

	// Deploy today's signatures.
	for _, sig := range result.Signatures {
		key := sig.Family + "\x00" + sig.Regex()
		if existing, ok := sigDB[key]; ok {
			existing.lastDay = day
		} else {
			sigDB[key] = &deployedSig{sig: sig, lastDay: day}
			ds.NewSignature[sig.Family] = true
		}
	}
	after, err := buildScanner(sigDB, day, cfg.SignatureTTL)
	if err != nil {
		return ds, err
	}

	// Figure 12: deployed signature length per family (longest live).
	for _, d := range sigDB {
		if d.lastDay > day-cfg.SignatureTTL {
			if l := d.sig.Length(); l > ds.SigLength[d.sig.Family] {
				ds.SigLength[d.sig.Family] = l
			}
		}
	}

	// Scan the day's traffic with both engines. One lexing scratch serves
	// the whole day (the configured ingest profile, when set, lexes with
	// its own front-end): scanners read the token stream only during the
	// call.
	var lexScratch jstoken.Scratch
	for _, s := range samples {
		var tokens []jstoken.Token
		if cfg.Pipeline.Profile != nil {
			tokens = cfg.Pipeline.Profile.LexDocument(s.Content)
		} else {
			tokens = lexScratch.LexDocumentInto(s.Content)
		}
		scanner := after
		if s.trickle {
			// Flip-day trickle: this sample hit browsers before
			// Kizzle's same-day update shipped.
			scanner = before
		}
		kMatches := scanner.ScanTokens(tokens)
		avFams := av.Scan(s.Content, day)

		if s.Family != "" {
			fam := s.Family
			ds.ByFamily[fam]++
			if len(kMatches) == 0 {
				ds.KizzleFN[fam]++
			}
			if len(avFams) == 0 {
				ds.AVFN[fam]++
			}
		} else {
			ds.Benign++
			if len(kMatches) > 0 {
				ds.KizzleFP[kMatches[0].Family]++
			}
			if len(avFams) > 0 {
				ds.AVFP[avFams[0]]++
			}
		}
	}
	return ds, nil
}

// buildScanner compiles the live signature set as of the start of day.
func buildScanner(sigDB map[string]*deployedSig, day, ttl int) (*sigmatch.Scanner, error) {
	scanner, err := sigmatch.NewScanner(nil)
	if err != nil {
		return nil, err
	}
	for _, d := range sigDB {
		if d.lastDay > day-ttl {
			if err := scanner.Add(d.sig); err != nil {
				return nil, fmt.Errorf("deploy %s signature: %w", d.sig.Family, err)
			}
		}
	}
	return scanner, nil
}

// Totals aggregates Figure 14's absolute counts.
type Totals struct {
	Family      string
	GroundTruth int
	AVFP        int
	AVFN        int
	KizzleFP    int
	KizzleFN    int
}

// FamilyTotals computes the Figure 14 rows (plus the sum row), in the
// paper's order for the JS workload and observed order otherwise.
func (r *MonthResult) FamilyTotals() []Totals {
	families := []string{"Nuclear", "Sweet Orange", "Angler", "RIG"}
	if r.Namespace != "" {
		families = r.Families()
	}
	out := make([]Totals, 0, len(families)+1)
	var sum Totals
	sum.Family = "Sum"
	for _, fam := range families {
		t := Totals{Family: fam}
		for _, d := range r.Days {
			t.GroundTruth += d.ByFamily[fam]
			t.AVFP += d.AVFP[fam]
			t.AVFN += d.AVFN[fam]
			t.KizzleFP += d.KizzleFP[fam]
			t.KizzleFN += d.KizzleFN[fam]
		}
		sum.GroundTruth += t.GroundTruth
		sum.AVFP += t.AVFP
		sum.AVFN += t.AVFN
		sum.KizzleFP += t.KizzleFP
		sum.KizzleFN += t.KizzleFN
		out = append(out, t)
	}
	return append(out, sum)
}

// Rates summarizes month-level FP/FN rates for both engines. FP rates are
// relative to all scanned samples, FN rates to malicious samples — the
// quantities behind the paper's headline "false-positive rates for Kizzle
// are under 0.03%, while the false-negative rates are under 5%".
type Rates struct {
	KizzleFP, KizzleFN float64
	AVFP, AVFN         float64
}

// MonthRates computes the aggregate rates.
func (r *MonthResult) MonthRates() Rates {
	var samples, malicious int
	var kfp, kfn, afp, afn int
	for _, d := range r.Days {
		samples += d.Samples
		malicious += d.maliciousTotal()
		kfp += d.kizzleFPTotal()
		kfn += d.kizzleFNTotal()
		afp += d.avFPTotal()
		afn += d.avFNTotal()
	}
	if samples == 0 || malicious == 0 {
		return Rates{}
	}
	return Rates{
		KizzleFP: float64(kfp) / float64(samples),
		KizzleFN: float64(kfn) / float64(malicious),
		AVFP:     float64(afp) / float64(samples),
		AVFN:     float64(afn) / float64(malicious),
	}
}
