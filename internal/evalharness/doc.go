// Package evalharness runs the paper's month-long evaluation (§IV): it
// replays the August 2014 grayware stream day by day, runs the Kizzle
// pipeline each day, deploys the generated signatures, scans the day's
// traffic with both Kizzle and the simulated commercial AV engine, and
// books false positives / negatives against the generator's ground truth.
// Every table and figure of the evaluation section is derived from the
// per-day statistics collected here.
package evalharness
