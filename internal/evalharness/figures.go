package evalharness

import (
	"fmt"
	"sort"
	"strings"

	"kizzle/internal/ekit"
)

// This file renders every table and figure of the paper's evaluation as
// text, so `cmd/evalmonth` (and the benchmarks) can print paper-vs-measured
// series.

// FormatFig2 renders the kit/CVE inventory table.
func FormatFig2() string {
	var sb strings.Builder
	sb.WriteString("Figure 2: CVEs used for each malware kit (as of September 2014)\n")
	fmt.Fprintf(&sb, "%-14s %-24s %-12s %-22s %-14s %-22s %s\n",
		"EK", "Flash", "Silverlight", "Java", "Adobe Reader", "Internet Explorer", "AV check")
	for _, k := range ekit.KitInventory() {
		fmt.Fprintf(&sb, "%-14s %-24s %-12s %-22s %-14s %-22s %v\n",
			k.Family, joinCVEs(k.Flash), joinCVEs(k.Silverlight), joinCVEs(k.Java),
			joinCVEs(k.AdobeReader), joinCVEs(k.IE), k.AVCheck)
	}
	return sb.String()
}

func joinCVEs(cves []ekit.CVE) string {
	if len(cves) == 0 {
		return "-"
	}
	parts := make([]string, len(cves))
	for i, c := range cves {
		parts[i] = string(c)
	}
	return strings.Join(parts, ", ")
}

// FormatFig5 renders the Nuclear evolution timeline.
func FormatFig5() string {
	var sb strings.Builder
	sb.WriteString("Figure 5: Evolution of the Nuclear exploit kit (packer changes above, payload changes below)\n")
	sb.WriteString("Packer changes:\n")
	for _, v := range ekit.NuclearTimeline {
		marker := ""
		if v.Semantic {
			marker = "  (semantic change)"
		}
		fmt.Fprintf(&sb, "  %-5s %s%s\n", ekit.Label(v.Day), v.Note, marker)
	}
	sb.WriteString("Payload changes:\n")
	fmt.Fprintf(&sb, "  %-5s %s\n", "7/29", "AV detection (code borrowed from RIG)")
	fmt.Fprintf(&sb, "  %-5s %s\n", "8/27", "CVE 2013-0074 (SL) appended")
	return sb.String()
}

// FormatFig6 renders the Angler window-of-vulnerability series.
func (r *MonthResult) FormatFig6() string {
	var sb strings.Builder
	sb.WriteString("Figure 6: Window of vulnerability for Angler (FN rate per day)\n")
	fmt.Fprintf(&sb, "%-6s %10s %12s\n", "day", "AV FN %", "Kizzle FN %")
	for _, d := range r.Days {
		total := d.ByFamily["Angler"]
		if total == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-6s %9.1f%% %11.1f%%\n", ekit.Label(d.Day),
			100*float64(d.AVFN["Angler"])/float64(total),
			100*float64(d.KizzleFN["Angler"])/float64(total))
	}
	return sb.String()
}

// FormatFig11 renders the similarity-over-time series per kit.
func (r *MonthResult) FormatFig11() string {
	var sb strings.Builder
	sb.WriteString("Figure 11: Similarity over time (winnow overlap of unpacked centroids vs best previous day)\n")
	families := []string{"Nuclear", "Sweet Orange", "Angler", "RIG"}
	fmt.Fprintf(&sb, "%-6s", "day")
	for _, f := range families {
		fmt.Fprintf(&sb, " %13s", f)
	}
	sb.WriteString("\n")
	for _, d := range r.Days {
		fmt.Fprintf(&sb, "%-6s", ekit.Label(d.Day))
		for _, f := range families {
			if v, ok := d.Similarity[r.qualify(f)]; ok {
				fmt.Fprintf(&sb, " %12.1f%%", 100*v)
			} else {
				fmt.Fprintf(&sb, " %13s", "-")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// FormatFig12 renders deployed Kizzle signature lengths over time; asterisks
// mark days a family's signature changed.
func (r *MonthResult) FormatFig12() string {
	var sb strings.Builder
	sb.WriteString("Figure 12: Kizzle signature lengths over time (chars; * = new signature issued)\n")
	families := []string{"RIG", "Angler", "Sweet Orange", "Nuclear"}
	fmt.Fprintf(&sb, "%-6s", "day")
	for _, f := range families {
		fmt.Fprintf(&sb, " %14s", f)
	}
	sb.WriteString("\n")
	for _, d := range r.Days {
		fmt.Fprintf(&sb, "%-6s", ekit.Label(d.Day))
		for _, f := range families {
			mark := " "
			if d.NewSignature[r.qualify(f)] {
				mark = "*"
			}
			fmt.Fprintf(&sb, " %13d%s", d.SigLength[r.qualify(f)], mark)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// FormatFig13 renders daily FP and FN rates for both engines.
func (r *MonthResult) FormatFig13() string {
	var sb strings.Builder
	sb.WriteString("Figure 13: False positives and false negatives over time, Kizzle vs. AV\n")
	fmt.Fprintf(&sb, "%-6s %10s %12s %10s %12s\n", "day", "AV FP %", "Kizzle FP %", "AV FN %", "Kizzle FN %")
	for _, d := range r.Days {
		mal := d.maliciousTotal()
		if d.Samples == 0 || mal == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-6s %9.3f%% %11.3f%% %9.1f%% %11.1f%%\n", ekit.Label(d.Day),
			100*float64(d.avFPTotal())/float64(d.Samples),
			100*float64(d.kizzleFPTotal())/float64(d.Samples),
			100*float64(d.avFNTotal())/float64(mal),
			100*float64(d.kizzleFNTotal())/float64(mal))
	}
	return sb.String()
}

// FormatFig14 renders the absolute FP/FN counts table.
func (r *MonthResult) FormatFig14() string {
	var sb strings.Builder
	sb.WriteString("Figure 14: False positives and false negatives, absolute counts (Kizzle vs. AV)\n")
	fmt.Fprintf(&sb, "%-14s %12s %8s %8s %10s %10s\n", "EK", "Ground truth", "AV FP", "AV FN", "Kizzle FP", "Kizzle FN")
	for _, t := range r.FamilyTotals() {
		fmt.Fprintf(&sb, "%-14s %12d %8d %8d %10d %10d\n",
			t.Family, t.GroundTruth, t.AVFP, t.AVFN, t.KizzleFP, t.KizzleFN)
	}
	rates := r.MonthRates()
	fmt.Fprintf(&sb, "\nMonth rates: Kizzle FP %.4f%%  FN %.2f%%   |   AV FP %.4f%%  FN %.2f%%\n",
		100*rates.KizzleFP, 100*rates.KizzleFN, 100*rates.AVFP, 100*rates.AVFN)
	return sb.String()
}

// FormatPerf renders the cluster-based processing performance summary
// (cluster counts per day, per-stage durations, reduce bottleneck) plus
// the day-over-day content-cache hit rate — the quantity behind "day N+1
// only pays for new content".
func (r *MonthResult) FormatPerf() string {
	var sb strings.Builder
	sb.WriteString("Processing performance (per §IV: clustering dominates; reduce is the serial bottleneck)\n")
	fmt.Fprintf(&sb, "%-6s %8s %8s %9s %10s %9s %9s %9s %9s %7s\n",
		"day", "samples", "uniques", "clusters", "malicious", "tokenize", "cluster", "reduce", "label", "cache%")
	var minClusters, maxClusters int
	var hits, lookups int64
	for i, d := range r.Days {
		if i == 0 || d.Clusters < minClusters {
			minClusters = d.Clusters
		}
		if d.Clusters > maxClusters {
			maxClusters = d.Clusters
		}
		rate := "-"
		if l := d.Pipeline.CacheHits + d.Pipeline.CacheMisses; l > 0 {
			rate = fmt.Sprintf("%.1f", 100*float64(d.Pipeline.CacheHits)/float64(l))
			hits += d.Pipeline.CacheHits
			lookups += l
		}
		fmt.Fprintf(&sb, "%-6s %8d %8d %9d %10d %9s %9s %9s %9s %7s\n",
			ekit.Label(d.Day), d.Samples, d.UniqueSequences, d.Clusters, d.MaliciousClusters,
			d.Pipeline.Tokenize.Round(1e6).String(), d.Pipeline.Cluster.Round(1e6).String(),
			d.Pipeline.Reduce.Round(1e6).String(), d.Pipeline.Label.Round(1e6).String(), rate)
	}
	fmt.Fprintf(&sb, "Clusters per day: %d–%d (paper: 280–1,200 at ~30x our stream scale)\n", minClusters, maxClusters)
	if lookups > 0 {
		scope := "per-run transient caches"
		if r.MonthCache {
			scope = "month-long cache"
		}
		fmt.Fprintf(&sb, "Content cache: %.1f%% hit rate over %d lookups (%s)\n",
			100*float64(hits)/float64(lookups), lookups, scope)
	}
	sweeps := 0
	for _, d := range r.Days {
		sweeps += d.Pipeline.LabelSweeps
	}
	fmt.Fprintf(&sb, "Label sweeps: %d family sweeps over the window (per-family generations re-sweep only corpus slices that changed)\n", sweeps)
	sb.WriteString("Per-workload totals (docs scanned, family-attributed clusters, signature issuances):\n")
	fmt.Fprintf(&sb, "  %-10s %8s %10s %11s\n", "workload", "docs", "clusters", "signatures")
	for _, t := range r.WorkloadTotals() {
		fmt.Fprintf(&sb, "  %-10s %8d %10d %11d\n", t.Workload, t.Docs, t.Clusters, t.Signatures)
	}
	return sb.String()
}

// WorkloadTotals aggregates the window's per-workload counters: the
// documents the run's stream scanned (attributed to the namespace the
// run compiled under), the labeled clusters per family namespace, and
// the signature issuances per family namespace. A single-corpus run
// reports one row; once two corpora share a fleet the rows split.
type WorkloadTotals struct {
	Workload   string
	Docs       int
	Clusters   int
	Signatures int
}

// WorkloadTotals computes the per-workload roll-up behind FormatPerf.
func (r *MonthResult) WorkloadTotals() []WorkloadTotals {
	ns := r.Namespace
	if ns == "" {
		ns = "js"
	}
	acc := make(map[string]*WorkloadTotals)
	get := func(w string) *WorkloadTotals {
		t, ok := acc[w]
		if !ok {
			t = &WorkloadTotals{Workload: w}
			acc[w] = t
		}
		return t
	}
	for _, d := range r.Days {
		get(ns).Docs += d.Samples
		for w, c := range d.WorkloadClusters {
			get(w).Clusters += c
		}
		for f, isNew := range d.NewSignature {
			if isNew {
				get(workloadOf(f)).Signatures++
			}
		}
	}
	out := make([]WorkloadTotals, 0, len(acc))
	for _, t := range acc {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Workload < out[j].Workload })
	return out
}

// FormatSummary renders a one-screen digest of the run.
func (r *MonthResult) FormatSummary() string {
	var sb strings.Builder
	rates := r.MonthRates()
	fmt.Fprintf(&sb, "Evaluation window: %s – %s (%d days)\n",
		ekit.Label(r.Days[0].Day), ekit.Label(r.Days[len(r.Days)-1].Day), len(r.Days))
	var samples int
	for _, d := range r.Days {
		samples += d.Samples
	}
	fmt.Fprintf(&sb, "Samples scanned: %d\n", samples)
	fmt.Fprintf(&sb, "Kizzle: FP %.4f%%, FN %.2f%%\n", 100*rates.KizzleFP, 100*rates.KizzleFN)
	fmt.Fprintf(&sb, "AV:     FP %.4f%%, FN %.2f%%\n", 100*rates.AVFP, 100*rates.AVFN)
	return sb.String()
}

// SimilaritySeries extracts a family's Figure 11 series as (label, value)
// pairs for programmatic checks.
func (r *MonthResult) SimilaritySeries(family string) []float64 {
	var out []float64
	for _, d := range r.Days {
		if v, ok := d.Similarity[family]; ok {
			out = append(out, v)
		}
	}
	return out
}

// Families lists families seen in the run, sorted.
func (r *MonthResult) Families() []string {
	set := make(map[string]bool)
	for _, d := range r.Days {
		for f := range d.ByFamily {
			set[f] = true
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
