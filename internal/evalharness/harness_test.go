package evalharness

import (
	"strings"
	"testing"

	"kizzle/internal/ekit"
)

// weekConfig runs a reduced window around the Angler flip (Figure 6) at a
// small benign scale for fast tests.
func weekConfig() Config {
	cfg := DefaultConfig()
	cfg.Stream.BenignPerDay = 150
	cfg.Days = nil
	for d := ekit.Date(8, 9); d <= ekit.Date(8, 20); d++ {
		cfg.Days = append(cfg.Days, d)
	}
	return cfg
}

func TestRunWindowOfVulnerability(t *testing.T) {
	res, err := Run(weekConfig())
	if err != nil {
		t.Fatal(err)
	}
	byDay := make(map[int]DayStats, len(res.Days))
	for _, d := range res.Days {
		byDay[d.Day] = d
	}

	// Before the flip both engines cover Angler fully.
	pre := byDay[ekit.Date(8, 11)]
	if pre.AVFN["Angler"] != 0 || pre.KizzleFN["Angler"] != 0 {
		t.Errorf("8/11 Angler FN: AV=%d Kizzle=%d, want 0/0", pre.AVFN["Angler"], pre.KizzleFN["Angler"])
	}
	// Inside the window AV misses roughly half of Angler; Kizzle tracked
	// the change within a day.
	for _, day := range []int{ekit.Date(8, 15), ekit.Date(8, 17)} {
		d := byDay[day]
		total := d.ByFamily["Angler"]
		if total == 0 {
			t.Fatalf("%s: no Angler traffic generated", ekit.Label(day))
		}
		avRate := float64(d.AVFN["Angler"]) / float64(total)
		if avRate < 0.25 {
			t.Errorf("%s: AV Angler FN rate = %.2f, want >= 0.25 (window of vulnerability)", ekit.Label(day), avRate)
		}
		if d.KizzleFN["Angler"] != 0 {
			t.Errorf("%s: Kizzle Angler FN = %d, want 0 (same-day response)", ekit.Label(day), d.KizzleFN["Angler"])
		}
	}
	// Flip day itself: Kizzle may miss only the trickle.
	flip := byDay[ekit.Date(8, 13)]
	if total := flip.ByFamily["Angler"]; total > 0 {
		if rate := float64(flip.KizzleFN["Angler"]) / float64(total); rate > 0.3 {
			t.Errorf("8/13 Kizzle Angler FN rate = %.2f, want a small trickle", rate)
		}
	}
}

func TestRunSimilaritySeries(t *testing.T) {
	res, err := Run(weekConfig())
	if err != nil {
		t.Fatal(err)
	}
	nuc := res.SimilaritySeries("Nuclear")
	if len(nuc) == 0 {
		t.Fatal("no Nuclear similarity points")
	}
	for _, v := range nuc {
		if v < 0.95 {
			t.Errorf("Nuclear similarity %v, want >= 0.95 (Figure 11a)", v)
		}
	}
	rig := res.SimilaritySeries("RIG")
	if len(rig) > 0 {
		avgRig := avg(rig)
		if avgRig > 0.9 {
			t.Errorf("RIG average similarity %v, want noisy/low (Figure 11d)", avgRig)
		}
		if avgRig >= avg(nuc) {
			t.Errorf("RIG similarity %v must be below Nuclear %v", avgRig, avg(nuc))
		}
	}
}

func avg(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestRunSignatureChurnTracksKit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stream.BenignPerDay = 100
	cfg.Days = nil
	// Window containing the Nuclear delimiter changes on 8/17 and 8/19.
	for d := ekit.Date(8, 14); d <= ekit.Date(8, 20); d++ {
		cfg.Days = append(cfg.Days, d)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	newSigDays := 0
	for _, d := range res.Days {
		if d.NewSignature["Nuclear"] {
			newSigDays++
		}
		if d.SigLength["Nuclear"] == 0 {
			t.Errorf("%s: no deployed Nuclear signature", ekit.Label(d.Day))
		}
	}
	// At least the first day and the two flip days must mint signatures.
	if newSigDays < 3 {
		t.Errorf("Nuclear minted signatures on %d days, want >= 3 (initial + 8/17 + 8/19)", newSigDays)
	}
}

// TestRunFullMonthHeadline reproduces the paper's headline claims over the
// whole of August: Kizzle FN under 5%, Kizzle FP comparable-to-AV and
// small, and AV FN several times Kizzle's.
func TestRunFullMonthHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full month run")
	}
	cfg := DefaultConfig()
	cfg.Stream.BenignPerDay = 400
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rates := res.MonthRates()
	if rates.KizzleFN >= 0.05 {
		t.Errorf("Kizzle FN = %.2f%%, want < 5%%", 100*rates.KizzleFN)
	}
	if rates.KizzleFP >= 0.01 {
		t.Errorf("Kizzle FP = %.3f%%, want < 1%%", 100*rates.KizzleFP)
	}
	if rates.AVFN <= 2*rates.KizzleFN {
		t.Errorf("AV FN %.2f%% should be well above Kizzle FN %.2f%%", 100*rates.AVFN, 100*rates.KizzleFN)
	}

	totals := r14Map(res)
	// Ground-truth ordering matches Figure 14.
	if !(totals["Angler"].GroundTruth > totals["Sweet Orange"].GroundTruth &&
		totals["Sweet Orange"].GroundTruth > totals["Nuclear"].GroundTruth &&
		totals["Nuclear"].GroundTruth > totals["RIG"].GroundTruth) {
		t.Errorf("ground-truth ordering wrong: %+v", totals)
	}
	// RIG is Kizzle's hardest family: worst FN rate among the kits.
	rigFN := float64(totals["RIG"].KizzleFN) / float64(totals["RIG"].GroundTruth)
	for _, fam := range []string{"Nuclear", "Sweet Orange", "Angler"} {
		r := float64(totals[fam].KizzleFN) / float64(totals[fam].GroundTruth)
		if r > rigFN {
			t.Errorf("%s Kizzle FN rate %.3f exceeds RIG's %.3f", fam, r, rigFN)
		}
	}
	// AV's false positives concentrate in Angler (the generic 8/19
	// signature); Kizzle's in Nuclear and RIG (shared-code families).
	if totals["Angler"].AVFP == 0 {
		t.Error("expected AV Angler false positives after 8/19")
	}
	if totals["Angler"].KizzleFP != 0 {
		t.Errorf("Kizzle Angler FP = %d, want 0", totals["Angler"].KizzleFP)
	}
	if totals["Nuclear"].KizzleFP+totals["RIG"].KizzleFP == 0 {
		t.Error("expected Kizzle FP in the shared-code families")
	}

	// Sum row consistency.
	sums := res.FamilyTotals()
	sum := sums[len(sums)-1]
	var gt, kfp, kfn int
	for _, tt := range sums[:len(sums)-1] {
		gt += tt.GroundTruth
		kfp += tt.KizzleFP
		kfn += tt.KizzleFN
	}
	if sum.GroundTruth != gt || sum.KizzleFP != kfp || sum.KizzleFN != kfn {
		t.Errorf("sum row inconsistent: %+v", sum)
	}
}

func r14Map(res *MonthResult) map[string]Totals {
	out := make(map[string]Totals)
	for _, t := range res.FamilyTotals() {
		out[t.Family] = t
	}
	return out
}

func TestFormatters(t *testing.T) {
	res, err := Run(weekConfig())
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name, out, needle string
	}{
		{"Fig2", FormatFig2(), "Sweet Orange"},
		{"Fig2 nuclear reader", FormatFig2(), "2010-0188"},
		{"Fig5", FormatFig5(), "Semantic change"},
		{"Fig5 borrow", FormatFig5(), "borrowed from RIG"},
		{"Fig6", res.FormatFig6(), "Kizzle FN %"},
		{"Fig11", res.FormatFig11(), "Nuclear"},
		{"Fig12", res.FormatFig12(), "Sweet Orange"},
		{"Fig13", res.FormatFig13(), "AV FP %"},
		{"Fig14", res.FormatFig14(), "Ground truth"},
		{"Perf", res.FormatPerf(), "Clusters per day"},
		{"Summary", res.FormatSummary(), "Kizzle"},
	}
	for _, c := range checks {
		if !strings.Contains(c.out, c.needle) {
			t.Errorf("%s output missing %q:\n%s", c.name, c.needle, c.out)
		}
	}
}

func TestRunRejectsBadStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stream.BenignPerDay = -1
	if _, err := Run(cfg); err == nil {
		t.Error("expected stream validation error")
	}
}

// TestRunWebkitWorkload pins the -profile webkit evaluation to the
// phishing-kit stream: ground truth is the phishkit inventory (not the
// JS kits), Kizzle's same-day turnaround covers the whole window, and
// the AV baseline shows xbalti's pre-release coverage gap.
func TestRunWebkitWorkload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Profile = "webkit"
	cfg.Stream.BenignPerDay = 60
	cfg.Days = nil
	for d := ekit.Date(8, 1); d <= ekit.Date(8, 4); d++ {
		cfg.Days = append(cfg.Days, d)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fams := res.Families()
	want := map[string]bool{"strato_v2": true, "chalbhai": true, "xbalti": true, "16shop": true}
	for _, f := range fams {
		if !want[f] {
			t.Errorf("webkit run saw non-phishing family %q", f)
		}
	}
	if len(fams) != len(want) {
		t.Errorf("Families = %v, want the four phishing kits", fams)
	}
	var kfn, avXbalti, xbalti int
	for _, d := range res.Days {
		kfn += d.kizzleFNTotal()
		avXbalti += d.AVFN["xbalti"]
		xbalti += d.ByFamily["xbalti"]
		if d.WorkloadClusters["webkit"] == 0 {
			t.Errorf("%s: no clusters attributed to the webkit workload", ekit.Label(d.Day))
		}
		for fam := range d.NewSignature {
			if !strings.HasPrefix(fam, "webkit/") {
				t.Errorf("%s: signature deployed under non-namespaced family %q", ekit.Label(d.Day), fam)
			}
		}
	}
	if kfn != 0 {
		t.Errorf("Kizzle missed %d phishing samples; same-day signatures should cover the window", kfn)
	}
	if xbalti == 0 || avXbalti != xbalti {
		t.Errorf("AV xbalti FN = %d of %d; its signature ships 8/12, the whole window should be missed", avXbalti, xbalti)
	}
}

func TestFamiliesList(t *testing.T) {
	res, err := Run(weekConfig())
	if err != nil {
		t.Fatal(err)
	}
	fams := res.Families()
	if len(fams) != 4 {
		t.Errorf("Families = %v, want the four kits", fams)
	}
}

// TestSweepThreshold verifies the calibration utility exposes the FP/FN
// trade-off: very low thresholds admit benign shared-code clusters (FP),
// very high ones reject the kit itself (FN).
func TestSweepThreshold(t *testing.T) {
	cfg := DefaultSweepWindow(120)
	points, err := SweepThreshold("Nuclear", []float64{0.5, 0.88, 1.01}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	low, def, high := points[0], points[1], points[2]
	if low.KizzleFP <= def.KizzleFP {
		t.Errorf("low threshold FP %d should exceed default's %d (PluginDetect admitted)", low.KizzleFP, def.KizzleFP)
	}
	if high.KizzleFN <= def.KizzleFN {
		t.Errorf("impossible threshold FN %d should exceed default's %d (kit rejected)", high.KizzleFN, def.KizzleFN)
	}
	if high.KizzleFP != 0 {
		t.Errorf("threshold > 1 cannot produce FP, got %d", high.KizzleFP)
	}
	out := FormatSweep("Nuclear", points)
	if !strings.Contains(out, "threshold") || !strings.Contains(out, "0.880") {
		t.Errorf("FormatSweep output:\n%s", out)
	}
}
