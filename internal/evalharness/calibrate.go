package evalharness

import (
	"fmt"
	"strings"

	"kizzle/internal/ekit"
)

// The paper (§V, "Tuning the ML") notes that threshold knobs need
// observation-driven tuning. SweepThreshold automates that: it replays a
// window once per candidate value of one family's labeling threshold and
// reports the FP/FN trade-off, which is how the family-specific defaults
// in pipeline.DefaultConfig were chosen.

// SweepPoint is the outcome for one threshold value.
type SweepPoint struct {
	// Threshold is the labeling threshold evaluated.
	Threshold float64
	// KizzleFP counts benign samples flagged as the swept family.
	KizzleFP int
	// KizzleFN counts missed samples of the swept family.
	KizzleFN int
	// GroundTruth is the family's sample count in the window.
	GroundTruth int
}

// SweepThreshold evaluates each candidate threshold for family over the
// window in cfg.Days.
func SweepThreshold(family string, thresholds []float64, cfg Config) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(thresholds))
	for _, th := range thresholds {
		run := cfg
		run.Pipeline.Thresholds = make(map[string]float64, len(cfg.Pipeline.Thresholds)+1)
		for k, v := range cfg.Pipeline.Thresholds {
			run.Pipeline.Thresholds[k] = v
		}
		run.Pipeline.Thresholds[family] = th
		res, err := Run(run)
		if err != nil {
			return nil, fmt.Errorf("threshold %.3f: %w", th, err)
		}
		p := SweepPoint{Threshold: th}
		for _, d := range res.Days {
			p.KizzleFP += d.KizzleFP[family]
			p.KizzleFN += d.KizzleFN[family]
			p.GroundTruth += d.ByFamily[family]
		}
		out = append(out, p)
	}
	return out, nil
}

// FormatSweep renders a sweep as a table.
func FormatSweep(family string, points []SweepPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Labeling-threshold sweep for %s\n", family)
	fmt.Fprintf(&sb, "%-10s %8s %8s %8s\n", "threshold", "FP", "FN", "truth")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-10.3f %8d %8d %8d\n", p.Threshold, p.KizzleFP, p.KizzleFN, p.GroundTruth)
	}
	return sb.String()
}

// DefaultSweepWindow is a short window suitable for calibration runs.
func DefaultSweepWindow(benignPerDay int) Config {
	cfg := DefaultConfig()
	cfg.Stream.BenignPerDay = benignPerDay
	cfg.Days = nil
	for d := ekit.Date(8, 17); d <= ekit.Date(8, 21); d++ {
		cfg.Days = append(cfg.Days, d)
	}
	return cfg
}
