package benchgate

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: kizzle
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScan-4             20000             59000 ns/op          12 B/op           1 allocs/op
BenchmarkScan-4             20000             61000 ns/op
BenchmarkScan-4             20000             57000 ns/op
BenchmarkPipelineSharded/mode=stream/shards=4          1        445000000 ns/op   445095 fleet-critical-us
PASS
ok      kizzle  10.9s
`

func TestParseAndAggregate(t *testing.T) {
	ms, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("parsed %d measurements, want 4", len(ms))
	}
	agg := Aggregate(ms)
	if e := agg["BenchmarkScan"]; e.Samples != 3 || e.NsPerOp != 59000 {
		t.Fatalf("BenchmarkScan = %+v, want median 59000 of 3", e)
	}
	if e := agg["BenchmarkPipelineSharded/mode=stream/shards=4"]; e.NsPerOp != 445000000 {
		t.Fatalf("sub-benchmark entry = %+v", e)
	}
	if e := agg["BenchmarkPipelineSharded/mode=stream/shards=4"]; e.Metrics["fleet-critical-us"] != 445095 {
		t.Fatalf("custom metric not captured: %+v", e.Metrics)
	}
	if e := agg["BenchmarkScan"]; e.Metrics != nil {
		t.Fatalf("B/op and allocs/op must not be treated as custom metrics: %+v", e.Metrics)
	}
}

func TestParseCustomMetrics(t *testing.T) {
	const out = `BenchmarkServe/batched-1   140000   8350 ns/op   0.62 coalesced/req   211 p50-us   750 p99-us
BenchmarkServe/batched-1   140000   8100 ns/op   0.61 coalesced/req   205 p50-us   900 p99-us
BenchmarkServe/batched-1   140000   8200 ns/op   0.63 coalesced/req   208 p50-us   800 p99-us
`
	ms, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0].Metrics["p99-us"] != 750 {
		t.Fatalf("parsed %+v", ms)
	}
	e := Aggregate(ms)["BenchmarkServe/batched"]
	if e.NsPerOp != 8200 || e.Metrics["p50-us"] != 208 || e.Metrics["p99-us"] != 800 {
		t.Fatalf("aggregated entry = %+v", e)
	}
}

// TestCompareGatesPercentiles: a throughput-neutral run whose p99 blew
// past tolerance must fail the gate; ungated custom metrics must not.
func TestCompareGatesPercentiles(t *testing.T) {
	base := map[string]Entry{
		"S": {NsPerOp: 100, Metrics: map[string]float64{"p50-us": 10, "p99-us": 50, "coalesced/req": 0.6}},
	}
	cur := map[string]Entry{
		"S": {NsPerOp: 100, Metrics: map[string]float64{"p50-us": 11, "p99-us": 200, "coalesced/req": 0.1}},
	}
	verdicts, regressed := Compare(cur, base, 0.25)
	if !regressed {
		t.Fatal("4x p99 must regress")
	}
	got := map[string]bool{}
	for _, v := range verdicts {
		got[v.Name] = v.Regressed
	}
	if got["S"] || got["S [p50-us]"] || !got["S [p99-us]"] {
		t.Errorf("verdicts = %+v", got)
	}
	if _, ok := got["S [coalesced/req]"]; ok {
		t.Error("ungated custom metric must not get a verdict")
	}

	// A percentile that vanished while the benchmark still ran fails.
	cur2 := map[string]Entry{"S": {NsPerOp: 100, Metrics: map[string]float64{"p50-us": 10}}}
	verdicts, regressed = Compare(cur2, base, 0.25)
	if !regressed {
		t.Fatal("vanished p99 metric must regress")
	}
	for _, v := range verdicts {
		if v.Name == "S [p99-us]" && !v.Regressed {
			t.Error("vanished percentile verdict not regressed")
		}
	}

	// A benchmark missing wholesale regresses once (on the benchmark),
	// not once per metric.
	verdicts, _ = Compare(map[string]Entry{}, base, 0.25)
	n := 0
	for _, v := range verdicts {
		if v.Regressed {
			n++
		}
	}
	if n != 1 {
		t.Errorf("missing benchmark produced %d regressions, want 1", n)
	}
}

func TestParseEvenMedian(t *testing.T) {
	ms, _ := Parse(strings.NewReader("BenchmarkX-1 1 100 ns/op\nBenchmarkX-1 1 300 ns/op\n"))
	if e := Aggregate(ms)["BenchmarkX"]; e.NsPerOp != 200 {
		t.Fatalf("even-count median = %v, want 200", e.NsPerOp)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkScan-4":                 "BenchmarkScan",
		"BenchmarkScan":                   "BenchmarkScan",
		"BenchmarkAblationEps/eps=0.10-2": "BenchmarkAblationEps/eps=0.10",
		"BenchmarkX/n=-5":                 "BenchmarkX/n=-5", // -5 is part of the name? no: numeric suffix trims
	}
	// The last case documents the limitation: a sub-benchmark name ending
	// in -<digits> is indistinguishable from the proc suffix; both sides
	// of a comparison normalize identically, so the gate still matches.
	delete(cases, "BenchmarkX/n=-5")
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	base := map[string]Entry{
		"A": {NsPerOp: 100},
		"B": {NsPerOp: 100},
		"C": {NsPerOp: 100}, // missing from current
	}
	cur := map[string]Entry{
		"A": {NsPerOp: 120}, // within 25%
		"B": {NsPerOp: 130}, // regressed
		"D": {NsPerOp: 50},  // new
	}
	verdicts, regressed := Compare(cur, base, 0.25)
	if !regressed {
		t.Fatal("expected a regression")
	}
	got := map[string]bool{}
	for _, v := range verdicts {
		got[v.Name] = v.Regressed
	}
	want := map[string]bool{"A": false, "B": true, "C": true, "D": false}
	for name, r := range want {
		if got[name] != r {
			t.Errorf("%s regressed = %v, want %v", name, got[name], r)
		}
	}
	if verdicts[0].Regressed != true {
		t.Error("regressions must sort first")
	}

	if _, regressed := Compare(map[string]Entry{"A": {NsPerOp: 124}}, map[string]Entry{"A": {NsPerOp: 100}}, 0.25); regressed {
		t.Error("24% over baseline must pass a 25% tolerance")
	}
}

func TestFormat(t *testing.T) {
	verdicts, _ := Compare(map[string]Entry{"A": {NsPerOp: 200}}, map[string]Entry{"A": {NsPerOp: 100}}, 0.25)
	out := Format(verdicts, 0.25)
	if !strings.Contains(out, "!!") || !strings.Contains(out, "2.00x") {
		t.Fatalf("report missing regression markers:\n%s", out)
	}
}
