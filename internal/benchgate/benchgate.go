// Package benchgate parses `go test -bench` output into per-benchmark
// median snapshots and compares runs against a committed baseline — the
// library behind cmd/benchgate and the CI bench-regression gate
// (scripts/benchgate.sh). Medians across -count runs absorb scheduler
// hiccups; the comparison tolerance absorbs runner-to-runner noise; an
// over-tolerance median — or a baselined benchmark that vanished — fails
// the gate.
package benchgate

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Measurement is one parsed `go test -bench` result line.
type Measurement struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped (sub-benchmark paths kept).
	Name string
	// NsPerOp is the reported ns/op.
	NsPerOp float64
}

// Parse extracts benchmark measurements from `go test -bench` output.
// Unrecognized lines (headers, PASS/ok, metrics-only lines) are skipped.
func Parse(r io.Reader) ([]Measurement, error) {
	var out []Measurement
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs; ns/op is the unit of
		// the value preceding it.
		ns := -1.0
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("benchgate: bad ns/op in %q", line)
				}
				ns = v
				break
			}
		}
		if ns < 0 || len(fields) < 3 {
			continue
		}
		out = append(out, Measurement{Name: trimProcSuffix(fields[0]), NsPerOp: ns})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	return out, nil
}

// trimProcSuffix strips the trailing -N GOMAXPROCS marker go test appends
// to benchmark names, leaving sub-benchmark paths intact.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Entry is one benchmark's aggregated snapshot value.
type Entry struct {
	// NsPerOp is the median across samples — the median shrugs off the
	// occasional scheduling hiccup a mean would absorb.
	NsPerOp float64 `json:"ns_per_op"`
	// Samples is how many runs fed the median.
	Samples int `json:"samples"`
}

// Snapshot is the serialized form of one bench run (BENCH_*.json).
type Snapshot struct {
	// Note describes the snapshot (e.g. which PR wrote it).
	Note string `json:"note,omitempty"`
	// Go is the toolchain version the run used.
	Go string `json:"go,omitempty"`
	// CPU is the benchmarking host's CPU line, for judging comparability.
	CPU string `json:"cpu,omitempty"`
	// Benchmarks maps benchmark name to its aggregated result.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Aggregate folds raw measurements into per-benchmark medians.
func Aggregate(ms []Measurement) map[string]Entry {
	byName := make(map[string][]float64)
	for _, m := range ms {
		byName[m.Name] = append(byName[m.Name], m.NsPerOp)
	}
	out := make(map[string]Entry, len(byName))
	for name, vals := range byName {
		sort.Float64s(vals)
		var median float64
		n := len(vals)
		if n%2 == 1 {
			median = vals[n/2]
		} else {
			median = (vals[n/2-1] + vals[n/2]) / 2
		}
		out[name] = Entry{NsPerOp: median, Samples: n}
	}
	return out
}

// Verdict is one benchmark's gate outcome.
type Verdict struct {
	Name     string
	Baseline float64 // ns/op in the baseline (0 when missing)
	Current  float64 // ns/op in this run (0 when missing)
	// Ratio is Current/Baseline (how many times slower than baseline).
	Ratio float64
	// Regressed marks the benchmark as outside tolerance (or missing
	// from the current run while present in the baseline).
	Regressed bool
}

// Compare gates the current run against a baseline: a benchmark
// regresses when its median exceeds baseline·(1+tolerance), or when a
// baselined benchmark vanished from the run (a silently dropped
// benchmark would otherwise blind the gate; refresh the baseline when
// renaming). Benchmarks new in the current run pass with Baseline 0.
// Results are sorted by descending ratio, regressions first.
func Compare(current, baseline map[string]Entry, tolerance float64) (verdicts []Verdict, regressed bool) {
	names := make(map[string]bool, len(current)+len(baseline))
	for n := range current {
		names[n] = true
	}
	for n := range baseline {
		names[n] = true
	}
	for name := range names {
		cur, haveCur := current[name]
		base, haveBase := baseline[name]
		v := Verdict{Name: name, Baseline: base.NsPerOp, Current: cur.NsPerOp}
		switch {
		case haveBase && !haveCur:
			v.Regressed = true
		case haveBase && base.NsPerOp > 0:
			v.Ratio = cur.NsPerOp / base.NsPerOp
			v.Regressed = v.Ratio > 1+tolerance
		}
		if v.Regressed {
			regressed = true
		}
		verdicts = append(verdicts, v)
	}
	sort.Slice(verdicts, func(a, b int) bool {
		if verdicts[a].Regressed != verdicts[b].Regressed {
			return verdicts[a].Regressed
		}
		if verdicts[a].Ratio != verdicts[b].Ratio {
			return verdicts[a].Ratio > verdicts[b].Ratio
		}
		return verdicts[a].Name < verdicts[b].Name
	})
	return verdicts, regressed
}

// Format renders verdicts as an aligned report.
func Format(verdicts []Verdict, tolerance float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-60s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio")
	for _, v := range verdicts {
		mark := "  "
		if v.Regressed {
			mark = "!!"
		}
		ratio := "-"
		if v.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", v.Ratio)
		}
		fmt.Fprintf(&sb, "%-60s %14.0f %14.0f %8s %s\n", v.Name, v.Baseline, v.Current, ratio, mark)
	}
	fmt.Fprintf(&sb, "tolerance: +%.0f%%\n", tolerance*100)
	return sb.String()
}
