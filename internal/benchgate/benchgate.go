// Package benchgate parses `go test -bench` output into per-benchmark
// median snapshots and compares runs against a committed baseline — the
// library behind cmd/benchgate and the CI bench-regression gate
// (scripts/benchgate.sh). Medians across -count runs absorb scheduler
// hiccups; the comparison tolerance absorbs runner-to-runner noise; an
// over-tolerance median — or a baselined benchmark that vanished — fails
// the gate.
//
// Custom metrics a benchmark reports via b.ReportMetric ride along in
// snapshots, and the ones whose unit starts with "p50-" or "p99-" are
// latency-percentile SLOs gated exactly like ns/op: a throughput-neutral
// change that fattens the tail fails the gate too.
package benchgate

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Measurement is one parsed `go test -bench` result line.
type Measurement struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped (sub-benchmark paths kept).
	Name string
	// NsPerOp is the reported ns/op.
	NsPerOp float64
	// Metrics holds the line's custom unit/value pairs (b.ReportMetric
	// output), keyed by unit — e.g. "p99-us". The standard -benchmem
	// units (B/op, allocs/op) and MB/s are excluded.
	Metrics map[string]float64
}

// standardUnit reports whether a bench unit is one of go test's own,
// as opposed to a b.ReportMetric custom metric.
func standardUnit(u string) bool {
	switch u {
	case "ns/op", "B/op", "allocs/op", "MB/s":
		return true
	}
	return false
}

// Parse extracts benchmark measurements from `go test -bench` output.
// Unrecognized lines (headers, PASS/ok) are skipped.
func Parse(r io.Reader) ([]Measurement, error) {
	var out []Measurement
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs; ns/op is the unit of
		// the value preceding it, custom units ride after.
		ns := -1.0
		var metrics map[string]float64
		for i := 2; i < len(fields); i++ {
			if _, err := strconv.ParseFloat(fields[i], 64); err == nil {
				continue // a value, not a unit
			}
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch {
			case fields[i] == "ns/op":
				ns = v
			case !standardUnit(fields[i]):
				if metrics == nil {
					metrics = make(map[string]float64)
				}
				metrics[fields[i]] = v
			}
		}
		if ns < 0 || len(fields) < 3 {
			continue
		}
		out = append(out, Measurement{Name: trimProcSuffix(fields[0]), NsPerOp: ns, Metrics: metrics})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	return out, nil
}

// trimProcSuffix strips the trailing -N GOMAXPROCS marker go test appends
// to benchmark names, leaving sub-benchmark paths intact.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Entry is one benchmark's aggregated snapshot value.
type Entry struct {
	// NsPerOp is the median across samples — the median shrugs off the
	// occasional scheduling hiccup a mean would absorb.
	NsPerOp float64 `json:"ns_per_op"`
	// Samples is how many runs fed the median.
	Samples int `json:"samples"`
	// Metrics holds per-unit medians of the benchmark's custom metrics
	// (b.ReportMetric). Units prefixed "p50-" or "p99-" are gated.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the serialized form of one bench run (BENCH_*.json).
type Snapshot struct {
	// Note describes the snapshot (e.g. which PR wrote it).
	Note string `json:"note,omitempty"`
	// Go is the toolchain version the run used.
	Go string `json:"go,omitempty"`
	// CPU is the benchmarking host's CPU line, for judging comparability.
	CPU string `json:"cpu,omitempty"`
	// Benchmarks maps benchmark name to its aggregated result.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// median of a non-empty sample set (sorts in place).
func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// Aggregate folds raw measurements into per-benchmark medians, custom
// metrics included.
func Aggregate(ms []Measurement) map[string]Entry {
	byName := make(map[string][]float64)
	metricsByName := make(map[string]map[string][]float64)
	for _, m := range ms {
		byName[m.Name] = append(byName[m.Name], m.NsPerOp)
		for unit, v := range m.Metrics {
			if metricsByName[m.Name] == nil {
				metricsByName[m.Name] = make(map[string][]float64)
			}
			metricsByName[m.Name][unit] = append(metricsByName[m.Name][unit], v)
		}
	}
	out := make(map[string]Entry, len(byName))
	for name, vals := range byName {
		e := Entry{NsPerOp: median(vals), Samples: len(vals)}
		if units := metricsByName[name]; len(units) > 0 {
			e.Metrics = make(map[string]float64, len(units))
			for unit, mv := range units {
				e.Metrics[unit] = median(mv)
			}
		}
		out[name] = e
	}
	return out
}

// Verdict is one benchmark's gate outcome.
type Verdict struct {
	Name     string
	Baseline float64 // ns/op in the baseline (0 when missing)
	Current  float64 // ns/op in this run (0 when missing)
	// Ratio is Current/Baseline (how many times slower than baseline).
	Ratio float64
	// Regressed marks the benchmark as outside tolerance (or missing
	// from the current run while present in the baseline).
	Regressed bool
}

// gatedMetric reports whether a custom metric unit is an SLO the gate
// enforces: latency percentiles reported as p50-* / p99-*.
func gatedMetric(unit string) bool {
	return strings.HasPrefix(unit, "p50-") || strings.HasPrefix(unit, "p99-")
}

// Compare gates the current run against a baseline: a benchmark
// regresses when its median exceeds baseline·(1+tolerance), or when a
// baselined benchmark vanished from the run (a silently dropped
// benchmark would otherwise blind the gate; refresh the baseline when
// renaming). Benchmarks new in the current run pass with Baseline 0.
// Latency-percentile custom metrics (p50-*/p99-*) get their own verdict
// per benchmark, named "Benchmark [unit]", gated by the same rules.
// Results are sorted by descending ratio, regressions first.
func Compare(current, baseline map[string]Entry, tolerance float64) (verdicts []Verdict, regressed bool) {
	names := make(map[string]bool, len(current)+len(baseline))
	for n := range current {
		names[n] = true
	}
	for n := range baseline {
		names[n] = true
	}
	for name := range names {
		cur, haveCur := current[name]
		base, haveBase := baseline[name]
		v := Verdict{Name: name, Baseline: base.NsPerOp, Current: cur.NsPerOp}
		switch {
		case haveBase && !haveCur:
			v.Regressed = true
		case haveBase && base.NsPerOp > 0:
			v.Ratio = cur.NsPerOp / base.NsPerOp
			v.Regressed = v.Ratio > 1+tolerance
		}
		if v.Regressed {
			regressed = true
		}
		verdicts = append(verdicts, v)

		// Percentile SLO metrics: every gated unit either side knows about
		// gets a verdict, so a vanished percentile fails just like a
		// vanished benchmark (but only when the benchmark itself still ran).
		units := make(map[string]bool)
		for u := range base.Metrics {
			if gatedMetric(u) {
				units[u] = true
			}
		}
		for u := range cur.Metrics {
			if gatedMetric(u) {
				units[u] = true
			}
		}
		for u := range units {
			bv, haveBV := base.Metrics[u]
			cv, haveCV := cur.Metrics[u]
			mv := Verdict{Name: name + " [" + u + "]", Baseline: bv, Current: cv}
			switch {
			case haveBV && !haveCV && haveCur:
				mv.Regressed = true
			case haveBV && haveCV && bv > 0:
				mv.Ratio = cv / bv
				mv.Regressed = mv.Ratio > 1+tolerance
			}
			if mv.Regressed {
				regressed = true
			}
			verdicts = append(verdicts, mv)
		}
	}
	sort.Slice(verdicts, func(a, b int) bool {
		if verdicts[a].Regressed != verdicts[b].Regressed {
			return verdicts[a].Regressed
		}
		if verdicts[a].Ratio != verdicts[b].Ratio {
			return verdicts[a].Ratio > verdicts[b].Ratio
		}
		return verdicts[a].Name < verdicts[b].Name
	})
	return verdicts, regressed
}

// Format renders verdicts as an aligned report.
func Format(verdicts []Verdict, tolerance float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-60s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio")
	for _, v := range verdicts {
		mark := "  "
		if v.Regressed {
			mark = "!!"
		}
		ratio := "-"
		if v.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", v.Ratio)
		}
		fmt.Fprintf(&sb, "%-60s %14.0f %14.0f %8s %s\n", v.Name, v.Baseline, v.Current, ratio, mark)
	}
	fmt.Fprintf(&sb, "tolerance: +%.0f%%\n", tolerance*100)
	return sb.String()
}
