// Package ekit is the synthetic exploit-kit substrate: it reproduces, as a
// deterministic generator, the grayware stream the paper collected through
// browser telemetry in August 2014. Each of the four studied kits (RIG,
// Nuclear, Angler, Sweet Orange) is modeled with the layered structure of
// Figure 3 — a fast-mutating packer around a slowly-evolving payload — with
// per-sample randomization (identifiers, delimiters, keys) and the
// dated mutation events of Figure 5. Benign traffic comes from a parametric
// family generator plus special-cased families (a PluginDetect-alike that
// shares code with Nuclear, per Figure 15, and a charcode loader that is
// structurally close to RIG's packer).
//
// Everything is keyed by (family, day, index), so streams are reproducible:
// the same configuration always yields byte-identical corpora.
package ekit
