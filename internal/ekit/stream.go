package ekit

import (
	"fmt"
	"strings"
)

// StreamConfig scales the daily grayware stream. The defaults are a
// 1:30-ish scale model of the paper's August 2014 volumes (80k–500k
// samples/day with Figure 14's per-kit ground truth of 58,856 over the
// month); rates, not absolute counts, are the comparable quantity.
type StreamConfig struct {
	// BenignPerDay is the number of benign samples per day, spread over
	// the benign families with a heavy-tailed mix.
	BenignPerDay int
	// KitPerDay gives the mean daily volume per kit.
	KitPerDay map[Family]int
	// NewVariantTrickle is the fraction of a kit's flip-day traffic that
	// already carries the new packer version (the rest still runs the
	// old one); low values reproduce the paper's "not numerous enough"
	// false-negative mechanism.
	NewVariantTrickle float64
}

// DefaultStreamConfig returns the scale used throughout the evaluation.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		BenignPerDay: 1200,
		KitPerDay: map[Family]int{
			FamilyAngler:      42, // 40,026 over the month at paper scale
			FamilySweetOrange: 12, // 11,315
			FamilyNuclear:     7,  // 6,106
			FamilyRIG:         2,  // 1,409 — "occurred with low frequency"
		},
		NewVariantTrickle: 0.08,
	}
}

// Stream generates deterministic daily sample sets.
type Stream struct {
	cfg StreamConfig
}

// NewStream validates the configuration and builds a stream.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if cfg.BenignPerDay < 0 {
		return nil, fmt.Errorf("ekit: negative BenignPerDay %d", cfg.BenignPerDay)
	}
	if cfg.NewVariantTrickle < 0 || cfg.NewVariantTrickle > 1 {
		return nil, fmt.Errorf("ekit: NewVariantTrickle %v outside [0,1]", cfg.NewVariantTrickle)
	}
	return &Stream{cfg: cfg}, nil
}

// Day renders the full grayware stream for one simulation day: benign
// samples first, then each kit's traffic, all with ground truth attached.
func (s *Stream) Day(day int) []Sample {
	var out []Sample
	out = append(out, s.benignDay(day)...)
	for _, fam := range Families {
		out = append(out, s.kitDay(fam, day)...)
	}
	return out
}

// MaliciousDay renders only the kit traffic of a day.
func (s *Stream) MaliciousDay(day int) []Sample {
	var out []Sample
	for _, fam := range Families {
		out = append(out, s.kitDay(fam, day)...)
	}
	return out
}

func (s *Stream) benignDay(day int) []Sample {
	r := rng("benign-mix", FamilyBenign, day, 0)
	out := make([]Sample, 0, s.cfg.BenignPerDay)
	// The three special families get small fixed slices; the rest is a
	// heavy-tailed mix over the parametric families.
	special := []string{BenignPluginDetect, BenignCharLoader, BenignHexLoader}
	specialShare := []int{4, 5, 2}
	idx := 0
	emit := func(kind string) {
		body := BenignSample(kind, day, idx)
		out = append(out, Sample{
			ID:         fmt.Sprintf("b-%d-%d", day, idx),
			Day:        day,
			Family:     FamilyBenign,
			BenignKind: kind,
			Content:    wrapHTML(kind, body, ""),
		})
		idx++
	}
	for si, kind := range special {
		n := specialShare[si]
		if n > s.cfg.BenignPerDay/20 {
			n = s.cfg.BenignPerDay / 20
		}
		for i := 0; i < n; i++ {
			emit(kind)
		}
	}
	for len(out) < s.cfg.BenignPerDay {
		// Zipf-ish: low-numbered families are much more common.
		f := int(float64(GenericBenignFamilies) * r.Float64() * r.Float64())
		if f >= GenericBenignFamilies {
			f = GenericBenignFamilies - 1
		}
		emit(GenericFamilyName(f))
	}
	return out
}

func (s *Stream) kitDay(family Family, day int) []Sample {
	mean := s.cfg.KitPerDay[family]
	if mean <= 0 {
		return nil
	}
	r := rng("kit-volume", family, day, 0)
	// Daily volume fluctuates ±40% around the mean.
	n := mean + r.Intn(2*mean/2+1) - mean/2
	if n < 0 {
		n = 0
	}
	flip := IsVersionFlipDay(family, day) && day > JuneStart
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		genDay := day
		idx := i
		if flip && r.Float64() >= s.cfg.NewVariantTrickle {
			// Old variant still serving most flip-day traffic:
			// generate exactly as the previous day's kit, with an
			// index offset to keep randomization fresh.
			genDay = day - 1
			idx = i + 100000
		}
		payload := Payload(family, genDay)
		packed := Pack(family, payload, genDay, idx)
		applet := ""
		if family == FamilyAngler && genDay < anglerEmbedDay {
			applet = `<applet code="` + AnglerJavaMarker + `" width="1" height="1"></applet>`
		}
		out = append(out, Sample{
			ID:      fmt.Sprintf("%s-%d-%d", strings.ToLower(family.String()[:3]), day, i),
			Day:     day,
			Family:  family,
			Variant: VersionIndex(family, genDay),
			Content: wrapHTML("lander", packed, applet),
		})
	}
	return out
}

// wrapHTML embeds a script body (and optional extra HTML) into a complete
// document, as captured by the telemetry hook.
func wrapHTML(title, script, extraHTML string) string {
	var sb strings.Builder
	sb.Grow(len(script) + len(extraHTML) + 128)
	sb.WriteString("<html><head><title>")
	sb.WriteString(title)
	sb.WriteString("</title></head><body>")
	sb.WriteString(extraHTML)
	sb.WriteString("<script type=\"text/javascript\">\n")
	sb.WriteString(script)
	sb.WriteString("\n</script></body></html>")
	return sb.String()
}
