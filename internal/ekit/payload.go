package ekit

import (
	"fmt"
	"strings"
)

// This file models the *inner* layer of the onion: the unpacked payloads.
// Per the paper's key observation, payloads keep stable identifiers and
// structure across versions — kit authors append to them (new CVEs, an AV
// check) but rarely rewrite them. All identifiers below are therefore fixed
// strings, not randomized.

// avCheckCode is the anti-AV file-probing routine. The paper observed the
// *exact same code* in RIG from May 2014 and in Nuclear from August,
// "apparently having been copied from the rivaling kit" — so it is a single
// shared constant here too.
const avCheckCode = `function checkAV(){var res=[];var files=["c:\\Windows\\System32\\drivers\\kl1.sys","c:\\Windows\\System32\\drivers\\tmactmon.sys","c:\\Windows\\System32\\drivers\\avgntflt.sys","c:\\Windows\\System32\\drivers\\avc3.sys"];for(var fi=0;fi<files.length;fi++){try{var ax=new ActiveXObject("Scripting.FileSystemObject");if(ax.FileExists(files[fi])){res.push(files[fi]);}}catch(errv){}}return res.length===0;}`

// pluginDetectCore is the plugin-version fingerprinting library. Nuclear's
// detector is borrowed from the benign PluginDetect library, which is why
// the paper's one representative false positive (Figure 15) is PluginDetect
// itself at 79% winnow overlap with Nuclear. The benign generator embeds
// this same constant.
const pluginDetectCore = `var PluginProbe={rgx:{any:/^\s*function/,num:/^number$/,arr:/Array/,str:/String/},hasOwn:function(obj,prop){return Object.prototype.hasOwnProperty.call(obj,prop);},toString:({}).constructor.prototype.toString,isPlainObject:function(c){var a=this,b;if(!c||a.rgx.any.test(a.toString.call(c))||c.window==c||a.rgx.num.test(a.toString.call(c.nodeType))){return 0;}try{if(!a.hasOwn(c,"constructor")&&!a.hasOwn(c.constructor.prototype,"isPrototypeOf")){return 0;}}catch(b2){return 0;}return 1;},isDefined:function(b){return typeof b!="undefined";},isArray:function(b){return this.rgx.arr.test(this.toString.call(b));},isString:function(b){return this.rgx.str.test(this.toString.call(b));},getVersion:function(name){var nav=window.navigator,plugs=nav.plugins;for(var pi=0;pi<plugs.length;pi++){if(plugs[pi].name.indexOf(name)>=0){return plugs[pi].description;}}try{var axo=new ActiveXObject(name);return axo.GetVariable("$version");}catch(e9){}return null;}};`

// exploitRoutine renders one CVE's exploit stub. Structure is constant per
// CVE; the routine names come straight from the Figure 2 inventory.
func exploitRoutine(component string, cve CVE) string {
	clean := strings.NewReplacer("-", "_", "(", "", ")", "").Replace(string(cve))
	return fmt.Sprintf(`function run_%s_%s(){var tgt=PluginProbe.getVersion(%q);if(!tgt){return false;}var el=document.createElement("object");el.setAttribute("data","payload_%s");el.setAttribute("type","application/x-%s");document.body.appendChild(el);return true;}`,
		strings.ToLower(component), clean, component, clean, strings.ToLower(component))
}

// evalTrigger is the short stub that kicks off kit execution once unpacked.
const evalTrigger = `(function(){var go=true;if(typeof checkAV=="function"){go=checkAV();}if(go){runAll();}})();`

// runAllStub chains the exploit routines in a fixed order.
func runAllStub(names []string) string {
	var sb strings.Builder
	sb.WriteString(`function runAll(){`)
	for _, n := range names {
		sb.WriteString(`if(` + n + `()){return;}`)
	}
	sb.WriteString(`}`)
	return sb.String()
}

// routineName reconstructs the name emitted by exploitRoutine.
func routineName(component string, cve CVE) string {
	clean := strings.NewReplacer("-", "_", "(", "", ")", "").Replace(string(cve))
	return "run_" + strings.ToLower(component) + "_" + clean
}

// Payload mutation dates (Figure 5 and §II-B).
var (
	// nuclearAVCheckDay: 7/29, "AV detection was added to the plug-in
	// detector" (borrowed from RIG).
	nuclearAVCheckDay = Date(7, 29)
	// nuclearCVEAppendDay: 8/27, "CVE 2013-0074 (SL)" appended.
	nuclearCVEAppendDay = Date(8, 27)
	// anglerEmbedDay: 8/13, the Java-exploit marker string moved from the
	// plain HTML snippet into the obfuscated body (Figure 6).
	anglerEmbedDay = Date(8, 13)
)

// AnglerJavaMarker is the distinctive string the commercial AV signature
// matched on (Example 1): visible in plain HTML before 8/13, inside the
// packed body afterwards.
const AnglerJavaMarker = `applet_cve_2013_0422_loader_v2`

// deliverCode is the hidden-iframe gate rotator. It is public loader
// boilerplate: the RIG author lifted it from the same snippet legitimate
// tracking widgets use, so the benign "charloader" family's decoded payload
// shares these exact bytes with RIG's unpacked body. Combined with RIG's
// necessarily low labeling threshold (its body churns ~50% a day), this is
// what makes RIG the family "that gave Kizzle the most challenge"
// (Figure 14's RIG false positives).
const deliverCode = `function deliver(){for(var gi=0;gi<gates.length;gi++){var fr=document.createElement("iframe");fr.setAttribute("src",gates[gi]);fr.width=1;fr.height=1;fr.frameBorder=0;document.body.appendChild(fr);}}`

// Payload returns the unpacked inner code of a kit on a given day. Within a
// day the payload is constant across samples (the slow-moving core); only
// RIG embeds per-day campaign URLs, which is what makes its day-over-day
// similarity so noisy (Figure 11d).
func Payload(family Family, day int) string {
	switch family {
	case FamilyRIG:
		return rigPayload(day)
	case FamilyNuclear:
		return nuclearPayload(day)
	case FamilyAngler:
		return anglerPayload(day)
	case FamilySweetOrange:
		return sweetOrangePayload(day)
	default:
		return ""
	}
}

func nuclearPayload(day int) string {
	parts := []string{pluginDetectCore}
	routines := []string{
		exploitRoutine("Flash", "2013-5331"),
		exploitRoutine("Flash", "2014-0497"),
		exploitRoutine("Java", "2013-2423"),
		exploitRoutine("Java", "2013-2460"),
		exploitRoutine("Reader", "2010-0188"),
		exploitRoutine("IE", "2013-2551"),
	}
	names := []string{
		routineName("Flash", "2013-5331"),
		routineName("Flash", "2014-0497"),
		routineName("Java", "2013-2423"),
		routineName("Java", "2013-2460"),
		routineName("Reader", "2010-0188"),
		routineName("IE", "2013-2551"),
	}
	if day >= nuclearCVEAppendDay {
		routines = append(routines, exploitRoutine("Silverlight", "2013-0074"))
		names = append(names, routineName("Silverlight", "2013-0074"))
	}
	parts = append(parts, routines...)
	if day >= nuclearAVCheckDay {
		parts = append(parts, avCheckCode)
	}
	parts = append(parts, runAllStub(names), evalTrigger)
	return strings.Join(parts, "\n")
}

// anglerDetectCore is Angler's own plugin fingerprinting. Unlike Nuclear,
// Angler did not borrow the PluginDetect library, so the benign
// PluginDetect-alike overlaps Nuclear — not Angler — at labeling time.
const anglerDetectCore = `var AxProbe={cache:{},query:function(clsid){if(this.cache[clsid]!==undefined){return this.cache[clsid];}var hit=null;try{hit=new ActiveXObject(clsid);}catch(qe){}this.cache[clsid]=hit;return hit;},versionOf:function(name){var mimes=window.navigator.mimeTypes;for(var mi=0;mi<mimes.length;mi++){if(mimes[mi].type.indexOf(name)>=0&&mimes[mi].enabledPlugin){return mimes[mi].enabledPlugin.description;}}var ax=this.query(name+".1");if(ax){try{return ax.GetVariable("$version");}catch(ve){}}return null;}};
var PluginProbe={getVersion:function(name){return AxProbe.versionOf(name);}};`

func anglerPayload(day int) string {
	parts := []string{anglerDetectCore, avCheckCode}
	routines := []string{
		exploitRoutine("Flash", "2014-0507"),
		exploitRoutine("Flash", "2014-0515"),
		exploitRoutine("Silverlight", "2013-0074"),
		exploitRoutine("IE", "2013-2551"),
	}
	names := []string{
		routineName("Flash", "2014-0507"),
		routineName("Flash", "2014-0515"),
		routineName("Silverlight", "2013-0074"),
		routineName("IE", "2013-2551"),
	}
	// The Java exploit: served as a plain HTML applet before 8/13, after
	// which the marker is only written from inside the payload when a
	// vulnerable Java version is present.
	if day >= anglerEmbedDay {
		routines = append(routines, `function run_java_2013_0422(){var jv=PluginProbe.getVersion("Java");if(!jv){return false;}document.write('<applet code="`+AnglerJavaMarker+`"></applet>');return true;}`)
		names = append(names, "run_java_2013_0422")
	}
	parts = append(parts, routines...)
	parts = append(parts, runAllStub(names), evalTrigger)
	return strings.Join(parts, "\n")
}

func rigPayload(day int) string {
	r := rng("rig-urls", FamilyRIG, day, 0)
	// RIG's unpacked body is short and dominated by per-day campaign
	// URLs; "these URLs alone represent a significant enough part of the
	// code to create a 50% churn" day over day (Figure 11d). The URL
	// count swings widely between campaigns.
	count := 6 + r.Intn(10)
	urls := make([]string, count)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://%s.%s/%s/%s.php?id=%s&c=%s",
			randLower(r, 8, 14), randLower(r, 5, 9), randLower(r, 6, 10),
			randLower(r, 6, 10), randAlnum(r, 16, 24), randAlnum(r, 10, 18))
	}
	var sb strings.Builder
	sb.WriteString(avCheckCode)
	sb.WriteString("\nvar gates=[")
	for i, u := range urls {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`"` + u + `"`)
	}
	sb.WriteString("];\n")
	sb.WriteString(exploitRoutine("Flash", "2014-0497"))
	sb.WriteString("\n")
	sb.WriteString(deliverCode)
	sb.WriteString("\n")
	sb.WriteString(runAllStub([]string{routineName("Flash", "2014-0497"), "deliver"}))
	sb.WriteString("\n")
	sb.WriteString(evalTrigger)
	return sb.String()
}

func sweetOrangePayload(day int) string {
	parts := []string{pluginDetectCore}
	parts = append(parts,
		exploitRoutine("Flash", "2014-0515"),
		exploitRoutine("Java", "Unknown"),
		exploitRoutine("IE", "2013-2551"),
		exploitRoutine("IE", "2014-0322"),
	)
	// Sweet Orange rotates a mid-sized landing-page section every few
	// days, giving the 50–95% band of Figure 11(b).
	epochIdx := day / 3
	r := rng("so-rotator", FamilySweetOrange, epochIdx, 0)
	var rot strings.Builder
	rot.WriteString("var landing={")
	for i := 0; i < 20+r.Intn(14); i++ {
		if i > 0 {
			rot.WriteString(",")
		}
		fmt.Fprintf(&rot, "%s:%q", randLower(r, 5, 9), randAlnum(r, 14, 34))
	}
	rot.WriteString("};")
	parts = append(parts, rot.String())
	parts = append(parts, runAllStub([]string{
		routineName("Flash", "2014-0515"),
		routineName("Java", "Unknown"),
		routineName("IE", "2013-2551"),
		routineName("IE", "2014-0322"),
	}), evalTrigger)
	return strings.Join(parts, "\n")
}
