package ekit

// PackerVersion describes one dated mutation of a kit's packer. For
// Nuclear this reproduces the Figure 5 timeline verbatim: 13 superficial
// changes to the eval obfuscation (above the axis) and one semantic change
// on 8/12.
type PackerVersion struct {
	// Day the version was first deployed.
	Day int
	// Delim is the delimiter / obfuscation fragment this version splices
	// into keywords and API-name strings (e.g. "UluN" turns "substr"
	// into "sUluNuUluNbUluNsUluNtUluNrUluN", as in Figure 10a).
	Delim string
	// Note is the Figure 5 call-out label.
	Note string
	// Semantic marks the 8/12 change that altered packer semantics.
	Semantic bool
}

// NuclearTimeline is the Figure 5 packer-change series.
var NuclearTimeline = []PackerVersion{
	{Day: Date(6, 1), Delim: "#FFFFFF", Note: "ev#FFFFFFal"},
	{Day: Date(6, 14), Delim: "#ffffff", Note: "e#FFFFFFval"},
	{Day: Date(6, 18), Delim: "#FFFFF0", Note: "eva#FFFFFFl"},
	{Day: Date(6, 24), Delim: "evv", Note: `"ev" + var`},
	{Day: Date(6, 30), Delim: "~", Note: "e~v~#...~a~l"},
	{Day: Date(7, 9), Delim: "~#", Note: "e~#...~v~a~l"},
	{Day: Date(7, 11), Delim: "~##", Note: "e~##...~#v~#a~#l"},
	{Day: Date(7, 17), Delim: "3X@@#", Note: "e3X@@#v.."},
	{Day: Date(7, 20), Delim: "3fwrwg4#", Note: "e3fwrwg4#"},
	{Day: Date(8, 12), Delim: "3fwrwg4#", Note: "Semantic change", Semantic: true},
	{Day: Date(8, 17), Delim: "sa1as", Note: "esa1asv"},
	{Day: Date(8, 19), Delim: "her_vam", Note: "eher_vam#"},
	{Day: Date(8, 22), Delim: "fber443", Note: "efber443#"},
	{Day: Date(8, 26), Delim: "UluN", Note: "eUluN#"},
}

// RIGTimeline models RIG's version churn: the delimiter "is randomized
// between different versions of the kit", with new versions roughly weekly.
var RIGTimeline = []PackerVersion{
	{Day: Date(6, 1), Delim: "y6"},
	{Day: Date(6, 9), Delim: "qz3"},
	{Day: Date(6, 17), Delim: "w0"},
	{Day: Date(6, 26), Delim: "t8b"},
	{Day: Date(7, 4), Delim: "k2"},
	{Day: Date(7, 13), Delim: "pp7"},
	{Day: Date(7, 22), Delim: "m4"},
	{Day: Date(7, 30), Delim: "zw"},
	{Day: Date(8, 7), Delim: "c9d"},
	{Day: Date(8, 15), Delim: "u5"},
	{Day: Date(8, 23), Delim: "hh2"},
}

// SweetOrangeTimeline rotates the perfect square used for the Math.sqrt
// integer obfuscation (Figure 10b shows 196 and 324 in one signature
// generation window).
var SweetOrangeTimeline = []PackerVersion{
	{Day: Date(6, 1), Delim: "196"},
	{Day: Date(6, 20), Delim: "324"},
	{Day: Date(7, 8), Delim: "225"},
	{Day: Date(7, 25), Delim: "289"},
	{Day: Date(8, 10), Delim: "196"},
	{Day: Date(8, 24), Delim: "324"},
}

// AnglerTimeline has a single structural flip: on 8/13 the Java-exploit
// marker moved from the plain HTML snippet into the obfuscated body
// (Example 1 / Figure 6).
var AnglerTimeline = []PackerVersion{
	{Day: Date(6, 1), Delim: "html-applet"},
	{Day: Date(8, 13), Delim: "embedded"},
}

// timelineFor returns a kit's packer timeline.
func timelineFor(family Family) []PackerVersion {
	switch family {
	case FamilyNuclear:
		return NuclearTimeline
	case FamilyRIG:
		return RIGTimeline
	case FamilySweetOrange:
		return SweetOrangeTimeline
	case FamilyAngler:
		return AnglerTimeline
	default:
		return nil
	}
}

// VersionIndex returns the index into the kit's timeline active on day.
func VersionIndex(family Family, day int) int {
	tl := timelineFor(family)
	idx := 0
	for i, v := range tl {
		if v.Day <= day {
			idx = i
		}
	}
	return idx
}

// VersionOn returns the packer version active on day.
func VersionOn(family Family, day int) PackerVersion {
	tl := timelineFor(family)
	if len(tl) == 0 {
		return PackerVersion{}
	}
	return tl[VersionIndex(family, day)]
}

// IsVersionFlipDay reports whether a new packer version is first deployed
// on day. On flip days only a trickle of traffic carries the new variant —
// the "not numerous enough ... to warrant a separate cluster" situation
// that causes Kizzle's residual false negatives.
func IsVersionFlipDay(family Family, day int) bool {
	for _, v := range timelineFor(family) {
		if v.Day == day {
			return true
		}
	}
	return false
}
