package ekit

import (
	"fmt"
	"strconv"
	"strings"
)

// This file models the *outer* layer of the onion: the packers of
// Figure 4. Each packer encodes the day's payload with per-sample
// randomness (identifiers, keys) and per-version structure (delimiters,
// obfuscation constants). The encodings round-trip with internal/unpack.

// interleave splices delim between every character of s — Nuclear's
// API-name obfuscation ("substr" -> "sUluNuUluNbUluN...").
func interleave(s, delim string) string {
	var sb strings.Builder
	sb.Grow(len(s) * (1 + len(delim)))
	for i := 0; i < len(s); i++ {
		if i > 0 {
			sb.WriteString(delim)
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

// encodeDecimalXOR encodes payload as fixed-width 3-digit decimal codes,
// each byte XORed with the cycling key — Nuclear's "encryption key" scheme:
// the key (and therefore the encoded payload) differs in every response.
func encodeDecimalXOR(payload, key string) string {
	var sb strings.Builder
	sb.Grow(len(payload) * 3)
	for i := 0; i < len(payload); i++ {
		c := payload[i] ^ key[i%len(key)]
		sb.WriteString(fmt.Sprintf("%03d", c))
	}
	return sb.String()
}

// PackNuclear wraps the payload in the Figure 4(b) unpacker: an encrypted
// payload string, a per-sample crypt key, a getter indirection, and the
// delimiter-obfuscated eval/window trigger. All identifiers are random per
// sample; the delimiter comes from the active PackerVersion.
func PackNuclear(payload string, day, index int) string {
	r := rng("nuclear-pack", FamilyNuclear, day, index)
	v := VersionOn(FamilyNuclear, day)
	key := randAlnum(r, 32, 48)
	enc := encodeDecimalXOR(payload, key)

	pv, kv := randIdent(r, 5, 8), randIdent(r, 5, 8)
	getter, thiscopy := randIdent(r, 5, 8), randIdent(r, 5, 8)
	doc, bgc := randIdent(r, 4, 7), randIdent(r, 4, 7)
	evl, win := randIdent(r, 4, 7), randIdent(r, 4, 7)
	out, ii := randIdent(r, 4, 7), randIdent(r, 3, 5)

	d := v.Delim
	var sb strings.Builder
	fmt.Fprintf(&sb, "var %s=%q;\n", pv, enc)
	fmt.Fprintf(&sb, "var %s=%q;\n", kv, key)
	fmt.Fprintf(&sb, "%s=function(a){return a;};\n", getter)
	fmt.Fprintf(&sb, "%s=this;\n", thiscopy)
	fmt.Fprintf(&sb, "%s=%s[%s[%q](%q)];\n", doc, thiscopy, thiscopy, getter, "document")
	fmt.Fprintf(&sb, "%s=%s[%s[%q](%q)];\n", bgc, doc, thiscopy, getter, "bgColor")
	// The API-name block the Figure 10(a) signature keys on.
	fmt.Fprintf(&sb, "var ops=[%s[%q](%q),%s[%q](%q),%s[%q](%q),%s[%q](%q)];\n",
		thiscopy, getter, interleave("concat", d),
		thiscopy, getter, interleave("substr", d),
		thiscopy, getter, interleave("Color", d),
		thiscopy, getter, interleave("length", d))
	fmt.Fprintf(&sb, "%s=%s[%q](\"ev%sal\");\n", evl, thiscopy, getter, d)
	fmt.Fprintf(&sb, "%s=%s[%q](\"win%sdow\");\n", win, thiscopy, getter, d)
	// Decode loop: strip the key by XOR over 3-digit groups.
	fmt.Fprintf(&sb, "var %s=\"\";\nfor(var %s=0;%s<%s.length;%s+=3){%s+=String.fromCharCode(parseInt(%s.substr(%s,3),10)^%s.charCodeAt((%s/3)%%%s.length));}\n",
		out, ii, ii, pv, ii, out, pv, ii, kv, ii, kv)
	fmt.Fprintf(&sb, "%s[%s[\"replace\"](%s,\"\")][%s[\"replace\"](%s,\"\")](%s);\n",
		thiscopy, win, bgc, evl, bgc, out)
	return sb.String()
}

// PackRIG wraps the payload in the Figure 4(a) unpacker: char codes joined
// by the version delimiter, fed through collect() calls into a buffer, then
// split and fromCharCode'd into a script element.
func PackRIG(payload string, day, index int) string {
	r := rng("rig-pack", FamilyRIG, day, index)
	v := VersionOn(FamilyRIG, day)
	delim := v.Delim

	codes := make([]string, len(payload))
	for i := 0; i < len(payload); i++ {
		codes[i] = strconv.Itoa(int(payload[i]))
	}
	joined := strings.Join(codes, delim) + delim

	buffer, collect := randIdent(r, 5, 8), randIdent(r, 5, 8)
	dv, pieces := randIdent(r, 4, 6), randIdent(r, 5, 8)
	screlem, iv := randIdent(r, 5, 8), randIdent(r, 2, 3)

	var sb strings.Builder
	fmt.Fprintf(&sb, "var %s=\"\";\n", buffer)
	fmt.Fprintf(&sb, "var %s=%q;\n", dv, delim)
	fmt.Fprintf(&sb, "function %s(text){%s+=text;}\n", collect, buffer)
	// Split the encoded stream across several collect calls, at
	// delimiter boundaries so decoding is chunk-order independent.
	chunks := splitChunks(joined, 180+r.Intn(60))
	for _, ch := range chunks {
		fmt.Fprintf(&sb, "%s(%q);\n", collect, ch)
	}
	fmt.Fprintf(&sb, "%s=%s.split(%s);\n", pieces, buffer, dv)
	fmt.Fprintf(&sb, "%s=document.createElement(\"script\");\n", screlem)
	fmt.Fprintf(&sb, "for(var %s=0;%s<%s.length;%s++){if(%s[%s]!=\"\"){%s.text+=String.fromCharCode(%s[%s]);}}\n",
		iv, iv, pieces, iv, pieces, iv, screlem, pieces, iv)
	fmt.Fprintf(&sb, "document.body.appendChild(%s);\n", screlem)
	return sb.String()
}

// splitChunks cuts s into pieces of roughly n bytes.
func splitChunks(s string, n int) []string {
	if n <= 0 {
		n = 180
	}
	var out []string
	for len(s) > n {
		out = append(out, s[:n])
		s = s[n:]
	}
	if len(s) > 0 {
		out = append(out, s)
	}
	return out
}

// encodeHex encodes payload bytes as lowercase hex pairs.
func encodeHex(payload string) string {
	const hexdigits = "0123456789abcdef"
	b := make([]byte, 0, len(payload)*2)
	for i := 0; i < len(payload); i++ {
		b = append(b, hexdigits[payload[i]>>4], hexdigits[payload[i]&0x0f])
	}
	return string(b)
}

// AnglerGateMarker appears in roughly half of Angler responses (the
// campaigns that route through an iframe gate); the second manual AV
// signature matches it, which is why AV's Angler coverage drops to ~50%
// rather than zero during the window of vulnerability.
const AnglerGateMarker = "anglr_gate_rotator_28"

// PackAngler produces Angler's packed body: hex-encoded payload plus a
// compact decoder. Before 8/13 the Java marker is additionally served as a
// plain HTML applet tag (handled in the HTML wrapper); withGate controls
// the optional gate-rotator chunk.
func PackAngler(payload string, day, index int, withGate bool) string {
	r := rng("angler-pack", FamilyAngler, day, index)
	enc := encodeHex(payload)
	dv, ov, iv := randIdent(r, 5, 9), randIdent(r, 5, 9), randIdent(r, 2, 4)

	var sb strings.Builder
	if withGate {
		fmt.Fprintf(&sb, "var gate=%q+%q;\n", AnglerGateMarker, randAlnum(r, 6, 12))
	}
	fmt.Fprintf(&sb, "var %s=%q;\n", dv, enc)
	fmt.Fprintf(&sb, "var %s=\"\";\n", ov)
	fmt.Fprintf(&sb, "for(var %s=0;%s<%s.length;%s+=2){%s+=String.fromCharCode(parseInt(%s.substr(%s,2),16));}\n",
		iv, iv, dv, iv, ov, dv, iv)
	fmt.Fprintf(&sb, "window[\"ev\"+\"al\"](%s);\n", ov)
	return sb.String()
}

// PackSweetOrange hides hex-encoded payload chunks inside longer random
// strings, recovered with substr(Math.sqrt(N), len) — the integer-literal
// obfuscation of Figure 10(b). N is the active version's perfect square.
func PackSweetOrange(payload string, day, index int) string {
	r := rng("so-pack", FamilySweetOrange, day, index)
	v := VersionOn(FamilySweetOrange, day)
	square, _ := strconv.Atoi(v.Delim)
	offset := intSqrt(square)

	enc := encodeHex(payload)
	const chunkLen = 48
	qq, fn := randIdent(r, 4, 7), randIdent(r, 5, 8)
	hx, out, iv := randIdent(r, 4, 7), randIdent(r, 4, 7), randIdent(r, 2, 4)

	var sb strings.Builder
	fmt.Fprintf(&sb, "function %s(){var %s=[];\n", fn, qq)
	for start := 0; start < len(enc); start += chunkLen {
		end := start + chunkLen
		if end > len(enc) {
			end = len(enc)
		}
		chunk := enc[start:end]
		carrier := randLower(r, offset, offset) + chunk + randLower(r, 4, 9)
		fmt.Fprintf(&sb, "%s.push(%q.substr(Math.sqrt(%d),%d));\n", qq, carrier, square, len(chunk))
	}
	fmt.Fprintf(&sb, "return %s.join(\"\");}\n", qq)
	fmt.Fprintf(&sb, "var %s=%s();var %s=\"\";\n", hx, fn, out)
	fmt.Fprintf(&sb, "for(var %s=0;%s<%s.length;%s+=2){%s+=String.fromCharCode(parseInt(%s.substr(%s,2),16));}\n",
		iv, iv, hx, iv, out, hx, iv)
	fmt.Fprintf(&sb, "window[\"e\"+\"va\"+\"l\"](%s);\n", out)
	return sb.String()
}

func intSqrt(n int) int {
	for i := 0; i*i <= n; i++ {
		if i*i == n {
			return i
		}
	}
	return 0
}

// Pack dispatches to the family's packer for the packer version active on
// day (or, on flip days, the previous version when useOld is set — the
// trickle mechanism lives in stream.go).
func Pack(family Family, payload string, day, index int) string {
	switch family {
	case FamilyNuclear:
		return PackNuclear(payload, day, index)
	case FamilyRIG:
		return PackRIG(payload, day, index)
	case FamilyAngler:
		r := rng("angler-gate", FamilyAngler, day, index)
		return PackAngler(payload, day, index, r.Float64() < 0.45)
	case FamilySweetOrange:
		return PackSweetOrange(payload, day, index)
	default:
		return payload
	}
}
