package ekit

import (
	"strings"
	"testing"

	"kizzle/internal/jstoken"
	"kizzle/internal/winnow"
)

func TestCalendar(t *testing.T) {
	tests := []struct {
		day   int
		label string
	}{
		{JuneStart, "6/1"},
		{AugustStart, "8/1"},
		{AugustEnd, "8/31"},
		{Date(8, 13), "8/13"},
		{Date(7, 29), "7/29"},
	}
	for _, tt := range tests {
		if got := Label(tt.day); got != tt.label {
			t.Errorf("Label(%d) = %s, want %s", tt.day, got, tt.label)
		}
	}
	if got := DayOf(DateOf(42)); got != 42 {
		t.Errorf("DayOf(DateOf(42)) = %d", got)
	}
	days := AugustDays()
	if len(days) != 31 || days[0] != AugustStart || days[30] != AugustEnd {
		t.Errorf("AugustDays() = %v", days)
	}
}

func TestKitInventoryMatchesFigure2(t *testing.T) {
	inv := KitInventory()
	if len(inv) != 4 {
		t.Fatalf("inventory has %d kits, want 4", len(inv))
	}
	byFam := make(map[Family]KitInfo, len(inv))
	for _, k := range inv {
		byFam[k.Family] = k
	}
	if byFam[FamilySweetOrange].AVCheck {
		t.Error("Sweet Orange must not have an AV check (Figure 2)")
	}
	for _, f := range []Family{FamilyAngler, FamilyRIG, FamilyNuclear} {
		if !byFam[f].AVCheck {
			t.Errorf("%v must have an AV check (Figure 2)", f)
		}
	}
	if got := byFam[FamilyNuclear].AdobeReader; len(got) != 1 || got[0] != "2010-0188" {
		t.Errorf("Nuclear Reader CVEs = %v, want the 2010 CVE the paper highlights", got)
	}
	if got := byFam[FamilyAngler].Java; len(got) != 1 || got[0] != "2013-0422" {
		t.Errorf("Angler Java CVEs = %v", got)
	}
}

func TestFamilyString(t *testing.T) {
	if FamilyBenign.Malicious() {
		t.Error("benign must not be malicious")
	}
	for _, f := range Families {
		if !f.Malicious() {
			t.Errorf("%v must be malicious", f)
		}
		if strings.HasPrefix(f.String(), "Family(") {
			t.Errorf("missing name for %d", int(f))
		}
	}
}

func TestNuclearTimelineMatchesFigure5(t *testing.T) {
	if len(NuclearTimeline) != 14 {
		t.Fatalf("Nuclear timeline has %d entries, want 14 (13 packer changes + semantic)", len(NuclearTimeline))
	}
	semantic := 0
	for i := 1; i < len(NuclearTimeline); i++ {
		if NuclearTimeline[i].Day <= NuclearTimeline[i-1].Day {
			t.Errorf("timeline not strictly ordered at %d", i)
		}
		if NuclearTimeline[i].Semantic {
			semantic++
		}
	}
	if semantic != 1 {
		t.Errorf("semantic changes = %d, want exactly 1 (8/12)", semantic)
	}
	if got := VersionOn(FamilyNuclear, Date(8, 27)).Delim; got != "UluN" {
		t.Errorf("delim on 8/27 = %q, want UluN (Figure 10a window)", got)
	}
	if got := VersionOn(FamilyNuclear, Date(6, 5)).Delim; got != "#FFFFFF" {
		t.Errorf("delim on 6/5 = %q, want #FFFFFF", got)
	}
}

func TestVersionFlipDays(t *testing.T) {
	if !IsVersionFlipDay(FamilyAngler, Date(8, 13)) {
		t.Error("8/13 must be Angler's flip day")
	}
	if IsVersionFlipDay(FamilyAngler, Date(8, 14)) {
		t.Error("8/14 must not be a flip day")
	}
	if VersionIndex(FamilyAngler, Date(8, 12)) == VersionIndex(FamilyAngler, Date(8, 13)) {
		t.Error("version index must change on 8/13")
	}
}

func TestPayloadStability(t *testing.T) {
	// Nuclear payload must be identical across a quiet stretch (Fig 11a).
	a := Payload(FamilyNuclear, Date(8, 2))
	b := Payload(FamilyNuclear, Date(8, 10))
	if a != b {
		t.Error("Nuclear payload changed in a quiet window")
	}
	// ...and must change on the 8/27 CVE append.
	c := Payload(FamilyNuclear, Date(8, 27))
	if a == c {
		t.Error("Nuclear payload must grow on 8/27")
	}
	if !strings.Contains(c, "2013_0074") {
		t.Error("appended CVE 2013-0074 missing from 8/27 payload")
	}
	if strings.Contains(a, "2013_0074") {
		t.Error("CVE 2013-0074 present before 8/27")
	}
}

func TestNuclearAVCheckBorrowedFromRIG(t *testing.T) {
	// Before 7/29: no AV check in Nuclear; after: the exact RIG code.
	before := Payload(FamilyNuclear, Date(7, 28))
	after := Payload(FamilyNuclear, Date(7, 29))
	if strings.Contains(before, avCheckCode) {
		t.Error("Nuclear must not have AV check before 7/29")
	}
	if !strings.Contains(after, avCheckCode) {
		t.Error("Nuclear must contain the exact borrowed AV-check code from 7/29")
	}
	if !strings.Contains(Payload(FamilyRIG, Date(6, 5)), avCheckCode) {
		t.Error("RIG must contain the AV check throughout")
	}
}

func TestRIGPayloadChurns(t *testing.T) {
	a := Payload(FamilyRIG, Date(8, 2))
	b := Payload(FamilyRIG, Date(8, 3))
	if a == b {
		t.Error("RIG payload must change daily (URL churn)")
	}
	cfg := winnow.DefaultConfig()
	rigOverlap := winnow.Overlap(winnow.Fingerprint(a, cfg), winnow.Fingerprint(b, cfg))
	nucOverlap := winnow.Overlap(
		winnow.Fingerprint(Payload(FamilyNuclear, Date(8, 2)), cfg),
		winnow.Fingerprint(Payload(FamilyNuclear, Date(8, 3)), cfg),
	)
	if nucOverlap < 0.96 {
		t.Errorf("Nuclear day-over-day overlap = %v, want >= 0.96 (Figure 11a)", nucOverlap)
	}
	if rigOverlap > nucOverlap {
		t.Errorf("RIG overlap %v must be below Nuclear %v (Figure 11d)", rigOverlap, nucOverlap)
	}
}

func TestAnglerMarkerFlip(t *testing.T) {
	before := Payload(FamilyAngler, Date(8, 12))
	after := Payload(FamilyAngler, Date(8, 13))
	if strings.Contains(before, AnglerJavaMarker) {
		t.Error("marker must not be in the payload before 8/13")
	}
	if !strings.Contains(after, AnglerJavaMarker) {
		t.Error("marker must be embedded in the payload from 8/13")
	}
}

func TestPackersRandomizePerSample(t *testing.T) {
	for _, fam := range Families {
		p := Payload(fam, AugustStart)
		a := Pack(fam, p, AugustStart, 0)
		b := Pack(fam, p, AugustStart, 1)
		if a == b {
			t.Errorf("%v: two samples of one day must differ", fam)
		}
		// But their token structure must be near-identical (this is what
		// clustering keys on).
		sa, sb := jstoken.Abstract(jstoken.Lex(a)), jstoken.Abstract(jstoken.Lex(b))
		if len(sa) == 0 {
			t.Fatalf("%v: packed sample lexed to nothing", fam)
		}
		diff := lenDiff(len(sa), len(sb))
		if diff > len(sa)/5 {
			t.Errorf("%v: token lengths %d vs %d diverge too much", fam, len(sa), len(sb))
		}
	}
}

func lenDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

func TestStreamDeterministic(t *testing.T) {
	s, err := NewStream(DefaultStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := s.Day(AugustStart)
	b := s.Day(AugustStart)
	if len(a) != len(b) {
		t.Fatalf("stream sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Content != b[i].Content || a[i].ID != b[i].ID {
			t.Fatalf("sample %d differs between runs", i)
		}
	}
}

func TestStreamComposition(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.BenignPerDay = 200
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day := Date(8, 5)
	samples := s.Day(day)
	counts := make(map[Family]int)
	benignKinds := make(map[string]int)
	for _, smp := range samples {
		counts[smp.Family]++
		if smp.Family == FamilyBenign {
			if smp.BenignKind == "" {
				t.Error("benign sample missing kind")
			}
			benignKinds[smp.BenignKind]++
		}
		if smp.Content == "" || !strings.Contains(smp.Content, "<script") {
			t.Error("sample content must be an HTML document with scripts")
		}
	}
	if counts[FamilyBenign] != 200 {
		t.Errorf("benign count = %d, want 200", counts[FamilyBenign])
	}
	if counts[FamilyAngler] <= counts[FamilyRIG] {
		t.Errorf("Angler (%d) must outnumber RIG (%d)", counts[FamilyAngler], counts[FamilyRIG])
	}
	for _, kind := range []string{BenignPluginDetect, BenignCharLoader, BenignHexLoader} {
		if benignKinds[kind] == 0 {
			t.Errorf("special benign family %s absent", kind)
		}
	}
	if len(benignKinds) < 10 {
		t.Errorf("only %d benign families in a day, want a diverse mix", len(benignKinds))
	}
}

func TestStreamConfigValidation(t *testing.T) {
	if _, err := NewStream(StreamConfig{BenignPerDay: -1}); err == nil {
		t.Error("negative BenignPerDay must be rejected")
	}
	if _, err := NewStream(StreamConfig{NewVariantTrickle: 1.5}); err == nil {
		t.Error("trickle > 1 must be rejected")
	}
}

func TestAnglerAppletOnlyBeforeFlip(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.BenignPerDay = 0
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hasApplet := func(day int) (with, without int) {
		for _, smp := range s.Day(day) {
			if smp.Family != FamilyAngler {
				continue
			}
			if strings.Contains(smp.Content, "<applet") {
				with++
			} else {
				without++
			}
		}
		return with, without
	}
	with, without := hasApplet(Date(8, 10))
	if without != 0 || with == 0 {
		t.Errorf("8/10: applet tags = %d/%d, want all-with", with, without)
	}
	with, without = hasApplet(Date(8, 14))
	if with != 0 || without == 0 {
		t.Errorf("8/14: applet tags = %d/%d, want none-with", with, without)
	}
	// Flip day: mixed (old variant dominates, new trickles in).
	with, without = hasApplet(Date(8, 13))
	if with == 0 {
		t.Error("8/13 must still serve mostly old-variant traffic")
	}
}

// Same-day samples of one kit must abstract to identical symbol sequences
// apart from volume-independent offsets — i.e. they must cluster together.
func TestKitSamplesClusterable(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.BenignPerDay = 0
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byFam := make(map[Family][][]jstoken.Symbol)
	for _, smp := range s.Day(Date(8, 5)) {
		syms := jstoken.Abstract(jstoken.LexDocument(smp.Content))
		byFam[smp.Family] = append(byFam[smp.Family], syms)
	}
	for fam, seqs := range byFam {
		if len(seqs) < 2 {
			continue
		}
		for i := 1; i < len(seqs); i++ {
			if lenDiff(len(seqs[0]), len(seqs[i])) > len(seqs[0])/5 {
				t.Errorf("%v: sample token counts %d vs %d too far apart to cluster", fam, len(seqs[0]), len(seqs[i]))
			}
		}
	}
}

func BenchmarkStreamDay(b *testing.B) {
	s, err := NewStream(DefaultStreamConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Day(AugustStart + i%31)
	}
}
