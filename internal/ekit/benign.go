package ekit

import (
	"fmt"
	"math/rand"
	"strings"
)

// Benign traffic model. The paper's grayware stream is dominated by benign
// code that falls "into a relatively small number of frequently observed
// clusters" (280–1,200 clusters/day). We reproduce that with:
//
//   - a parametric generator that derives dozens of structurally distinct
//     script families from a family seed, each randomized per sample the
//     way real sites randomize ids and versions, and
//   - three special-cased families wired to specific paper observations:
//     "plugindetect" (shares its core with Nuclear's detector, Figure 15),
//     "charloader" (a legitimate charcode loader structurally close to
//     RIG's packer), and "hexloader" (a legitimate hex decoder that the
//     lagged AV engine's overly generic Angler response matches).

// BenignKinds lists the special-cased benign family names.
const (
	BenignPluginDetect = "plugindetect"
	BenignCharLoader   = "charloader"
	BenignHexLoader    = "hexloader"
)

// GenericBenignFamilies is the number of parametric benign families.
const GenericBenignFamilies = 40

// BenignSample renders one benign document body for (kind, day, index).
func BenignSample(kind string, day, index int) string {
	switch kind {
	case BenignPluginDetect:
		return benignPluginDetect(day, index)
	case BenignCharLoader:
		return benignCharLoader(day, index)
	case BenignHexLoader:
		return benignHexLoader(day, index)
	default:
		return benignGeneric(kind, day, index)
	}
}

// benignPluginDetect is the PluginDetect-alike library: the same detection
// core Nuclear borrowed, plus a version-dependent amount of wrapper code
// that moves its winnow overlap with Nuclear around the labeling threshold
// (the paper's representative false positive had 79% overlap).
func benignPluginDetect(day, index int) string {
	r := rng("benign-"+BenignPluginDetect, FamilyBenign, day, index)
	// The wrapper grows and shrinks with the library's weekly release
	// cycle, not per sample: all of a day's samples cluster together.
	wr := rng("benign-plugindetect-release", FamilyBenign, day/7, 0)
	extra := 2 + wr.Intn(6)
	var sb strings.Builder
	sb.WriteString(pluginDetectCore)
	sb.WriteString("\n")
	for i := 0; i < extra; i++ {
		fmt.Fprintf(&sb, "PluginProbe.onDetect_%d=function(cb){var v=this.getVersion(%q);if(v){cb(v);}return this;};\n",
			i, []string{"Flash", "Java", "Silverlight", "QuickTime", "PDF", "WMP", "RealPlayer", "Shockwave"}[i%8])
	}
	fmt.Fprintf(&sb, "var detector_%s=PluginProbe;\n", randLower(r, 3, 6))
	return sb.String()
}

// benignCharLoader is a legitimate tracking widget built on the same public
// loader snippet RIG's packer was lifted from: char codes joined by a
// delimiter, collect()ed into a buffer, split, and fromCharCode'd into a
// script element. Its *decoded* payload is a tracker that embeds 1×1
// iframes with the exact deliverCode boilerplate RIG's unpacked body uses.
// On days when the tracker's URL list is short, its winnow containment
// against the RIG corpus crosses RIG's (necessarily low) threshold — the
// source of Figure 14's RIG false positives for Kizzle. Its delimiter is
// whatever loader version the site happens to ship, i.e. a random draw
// from the versions seen in the wild.
func benignCharLoader(day, index int) string {
	r := rng("benign-"+BenignCharLoader, FamilyBenign, day, index)
	delim := RIGTimeline[r.Intn(len(RIGTimeline))].Delim

	// The tracker URL count is a property of the day's ad campaign.
	dr := rng("benign-charloader-campaign", FamilyBenign, day, 0)
	count := 3 + dr.Intn(10)
	var tracker strings.Builder
	tracker.WriteString("var gates=[")
	for i := 0; i < count; i++ {
		if i > 0 {
			tracker.WriteString(",")
		}
		fmt.Fprintf(&tracker, "\"http://%s.%s/pixel/%s?u=%s\"",
			randLower(r, 7, 12), randLower(r, 5, 8), randLower(r, 5, 9), randAlnum(r, 12, 20))
	}
	tracker.WriteString("];\n")
	tracker.WriteString(deliverCode)
	tracker.WriteString("\ndeliver();")
	decoded := tracker.String()

	codes := make([]string, len(decoded))
	for i := 0; i < len(decoded); i++ {
		codes[i] = fmt.Sprintf("%d", decoded[i])
	}
	joined := strings.Join(codes, delim) + delim

	buffer, collect := randIdent(r, 5, 8), randIdent(r, 5, 8)
	dv, pieces := randIdent(r, 4, 6), randIdent(r, 5, 8)
	screlem, iv := randIdent(r, 5, 8), randIdent(r, 2, 3)

	var sb strings.Builder
	fmt.Fprintf(&sb, "var %s=\"\";\n", buffer)
	fmt.Fprintf(&sb, "var %s=%q;\n", dv, delim)
	fmt.Fprintf(&sb, "function %s(text){%s+=text;}\n", collect, buffer)
	for _, ch := range splitChunks(joined, 180+r.Intn(60)) {
		fmt.Fprintf(&sb, "%s(%q);\n", collect, ch)
	}
	fmt.Fprintf(&sb, "%s=%s.split(%s);\n", pieces, buffer, dv)
	fmt.Fprintf(&sb, "%s=document.createElement(\"script\");\n", screlem)
	fmt.Fprintf(&sb, "for(var %s=0;%s<%s.length;%s++){if(%s[%s]!=\"\"){%s.text+=String.fromCharCode(%s[%s]);}}\n",
		iv, iv, pieces, iv, pieces, iv, screlem, pieces, iv)
	fmt.Fprintf(&sb, "document.body.appendChild(%s);\n", screlem)
	return sb.String()
}

// benignHexLoader is a legitimate asset decoder whose inner loop contains
// the byte sequence the lagged AV engine's generic Angler signature keys
// on.
func benignHexLoader(day, index int) string {
	r := rng("benign-"+BenignHexLoader, FamilyBenign, day, index)
	d1 := encodeHex("/* sprite sheet a: " + randLower(r, 10, 24) + " */")
	d2 := encodeHex("/* sprite sheet b: " + randLower(r, 10, 24) + " */")
	v1, v2, arr := randIdent(r, 5, 9), randIdent(r, 5, 9), randIdent(r, 4, 7)
	ov, i1, i2 := randIdent(r, 4, 7), randIdent(r, 2, 4), randIdent(r, 2, 4)
	var sb strings.Builder
	fmt.Fprintf(&sb, "var %s=%q;\nvar %s=%q;\nvar %s=[];\n", v1, d1, v2, d2, arr)
	fmt.Fprintf(&sb, "for(var %s=0;%s<%s.length;%s+=2){%s.push(String.fromCharCode(parseInt(%s.substr(%s,2),16)));}\n",
		i1, i1, v1, i1, arr, v1, i1)
	fmt.Fprintf(&sb, "for(var %s=0;%s<%s.length;%s+=2){%s.push(String.fromCharCode(parseInt(%s.substr(%s,2),16)));}\n",
		i2, i2, v2, i2, arr, v2, i2)
	fmt.Fprintf(&sb, "var %s=%s.join(\"\");\n", ov, arr)
	fmt.Fprintf(&sb, "if(window.loadSprites){window.loadSprites(%s,%s.length);}\n", ov, arr)
	return sb.String()
}

// statement templates for the parametric generator. Placeholders: %[1]s and
// %[2]s are per-sample identifiers, %[3]q a per-sample string, %[4]d a
// per-sample number.
var benignStatementTemplates = []string{
	"var %[1]s = document.getElementById(%[3]q);",
	"function %[1]s(%[2]s) { return %[2]s + %[4]d; }",
	"var %[1]s = { key: %[3]q, count: %[4]d };",
	"for (var %[2]s = 0; %[2]s < %[4]d; %[2]s++) { %[1]s.push(%[2]s); }",
	"%[1]s.addEventListener(%[3]q, function() { %[1]s.className = %[3]q; });",
	"if (window.%[1]s) { window.%[1]s.init(%[4]d); }",
	"var %[1]s = %[3]q.split(\",\");",
	"setTimeout(function() { %[1]s(%[4]d); }, %[4]d);",
	"try { %[1]s.track(%[3]q); } catch (%[2]s) {}",
	"%[1]s.style.width = %[4]d + \"px\";",
	"var %[1]s = new Array(%[4]d).join(%[3]q);",
	"document.cookie = %[3]q + \"=\" + %[1]s;",
	"%[1]s = %[1]s.replace(/\\s+/g, %[3]q);",
	"var %[1]s = location.href.indexOf(%[3]q) >= %[4]d;",
	"%[1]s.innerHTML = \"<div class=\\\"\" + %[3]q + \"\\\">\" + %[1]s + \"</div>\";",
	"window.%[1]s = window.%[1]s || [];",
	"%[1]s.push([%[3]q, %[4]d]);",
	"var %[1]s = Math.floor(Math.random() * %[4]d);",
	"jQuery(%[3]q).on(%[3]q, %[1]s);",
	"var %[1]s = encodeURIComponent(%[3]q);",
}

// benignGeneric renders a sample of the parametric family named kind
// ("site07" etc.). The family seed fixes the statement mix and length;
// per-sample randomness fills identifiers, strings and numbers, so samples
// of one family form a tight token cluster.
func benignGeneric(kind string, day, index int) string {
	fr := rand.New(rand.NewSource(seedFor("benign-family-"+kind, FamilyBenign, 0, 0)))
	n := 8 + fr.Intn(22)
	picks := make([]int, n)
	for i := range picks {
		picks[i] = fr.Intn(len(benignStatementTemplates))
	}
	sr := rng("benign-sample-"+kind, FamilyBenign, day, index)
	var sb strings.Builder
	for _, p := range picks {
		fmt.Fprintf(&sb, benignStatementTemplates[p],
			randIdent(sr, 4, 9), randIdent(sr, 3, 6),
			randLower(sr, 4, 10), 10+sr.Intn(900))
		sb.WriteString("\n")
	}
	return sb.String()
}

// GenericFamilyName names the i-th parametric benign family.
func GenericFamilyName(i int) string { return fmt.Sprintf("site%02d", i) }
