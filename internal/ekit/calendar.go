package ekit

import "time"

// The simulation calendar spans the paper's measurement window: days are
// counted from 2014-06-01 (day 0), covering the three-month Nuclear
// evolution study (Figure 5) and the August 2014 evaluation month
// (Figures 6, 11, 12, 13, 14).
var epoch = time.Date(2014, time.June, 1, 0, 0, 0, 0, time.UTC)

// Calendar day constants.
const (
	// JuneStart is 2014-06-01, day 0.
	JuneStart = 0
	// AugustStart is 2014-08-01.
	AugustStart = 61
	// AugustEnd is 2014-08-31 (inclusive).
	AugustEnd = 91
	// SeptemberStart is the first day outside the evaluation window.
	SeptemberStart = 92
)

// DateOf converts a simulation day to its calendar date.
func DateOf(day int) time.Time { return epoch.AddDate(0, 0, day) }

// DayOf converts a calendar date to a simulation day.
func DayOf(t time.Time) int { return int(t.Sub(epoch).Hours() / 24) }

// Date builds the simulation day for a 2014 month/day pair, e.g.
// Date(8, 13) for the Angler variant flip of Figure 6.
func Date(month time.Month, day int) int {
	return DayOf(time.Date(2014, month, day, 0, 0, 0, 0, time.UTC))
}

// Label renders a day in the short "8/13" style the paper's figures use.
func Label(day int) string {
	d := DateOf(day)
	return d.Format("1/2")
}

// AugustDays returns all 31 days of the evaluation month in order.
func AugustDays() []int {
	days := make([]int, 0, AugustEnd-AugustStart+1)
	for d := AugustStart; d <= AugustEnd; d++ {
		days = append(days, d)
	}
	return days
}
