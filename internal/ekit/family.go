package ekit

import "fmt"

// Family identifies the ground-truth origin of a sample.
type Family int

// The four exploit kits under study plus benign. FamilyBenign is the zero
// value: an unlabeled sample is benign until proven otherwise.
const (
	FamilyBenign Family = iota
	FamilyRIG
	FamilyNuclear
	FamilyAngler
	FamilySweetOrange
)

// Families lists the malicious families in a stable order.
var Families = []Family{FamilyRIG, FamilyNuclear, FamilyAngler, FamilySweetOrange}

// String returns the family name as used in the paper.
func (f Family) String() string {
	switch f {
	case FamilyBenign:
		return "Benign"
	case FamilyRIG:
		return "RIG"
	case FamilyNuclear:
		return "Nuclear"
	case FamilyAngler:
		return "Angler"
	case FamilySweetOrange:
		return "Sweet Orange"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Malicious reports whether the family is an exploit kit.
func (f Family) Malicious() bool { return f != FamilyBenign }

// CVE names a targeted vulnerability.
type CVE string

// KitInfo is one row of the paper's Figure 2: the CVE inventory of a kit as
// of September 2014, broken down by targeted component.
type KitInfo struct {
	Family      Family
	Flash       []CVE
	Silverlight []CVE
	Java        []CVE
	AdobeReader []CVE
	IE          []CVE
	AVCheck     bool
}

// KitInventory reproduces Figure 2 exactly.
func KitInventory() []KitInfo {
	return []KitInfo{
		{
			Family: FamilySweetOrange,
			Flash:  []CVE{"2014-0515"},
			Java:   []CVE{"Unknown"},
			IE:     []CVE{"2013-2551", "2014-0322"},
		},
		{
			Family:      FamilyAngler,
			Flash:       []CVE{"2014-0507", "2014-0515"},
			Silverlight: []CVE{"2013-0074"},
			Java:        []CVE{"2013-0422"},
			IE:          []CVE{"2013-2551"},
			AVCheck:     true,
		},
		{
			Family:      FamilyRIG,
			Flash:       []CVE{"2014-0497"},
			Silverlight: []CVE{"2013-0074"},
			Java:        []CVE{"Unknown"},
			IE:          []CVE{"2013-2551"},
			AVCheck:     true,
		},
		{
			Family:      FamilyNuclear,
			Flash:       []CVE{"(2013-5331)", "2014-0497"},
			Java:        []CVE{"2013-2423", "2013-2460"},
			AdobeReader: []CVE{"2010-0188"},
			IE:          []CVE{"2013-2551"},
			AVCheck:     true,
		},
	}
}

// Sample is one grayware document with its ground truth.
type Sample struct {
	// ID uniquely identifies the sample within a stream.
	ID string
	// Day is the simulation day (days since 2014-06-01; see Calendar).
	Day int
	// Family is the ground-truth origin; FamilyBenign for benign code.
	Family Family
	// BenignKind names the benign generator family (empty for kits).
	BenignKind string
	// Variant tags which packer version produced a malicious sample.
	Variant int
	// Content is the full HTML document, inline scripts included.
	Content string
}
