// Package servemetrics is the shared observability kit of the serving
// tier: a lock-free latency histogram cheap enough to sit on the scan hot
// path, and helpers for the /metrics endpoints that kizzlegate, sigserve,
// and kizzleshard expose — the dashboard surface that makes a fleet of
// replicas operable from one place (scan counts, p50/p99 scan latency,
// matcher versions, cache hit rates, resident-set bytes). Every endpoint
// serves indented JSON by default and Prometheus text exposition with
// ?format=prom, so one scrape config covers every binary in the fleet.
//
// The histogram buckets durations logarithmically with two mantissa bits
// (≈19% bucket width), which resolves p50/p99 finely enough for
// operational dashboards at a fixed 2 KiB of atomics per histogram and
// ~15 ns per observation. SLO gating in CI does not read these
// histograms: benchmarks compute exact percentiles from recorded samples
// (see gateway's BenchmarkServe) so the bench gate never inherits bucket
// quantization.
package servemetrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// histBuckets covers 1 ns to beyond an hour: values below 8 ns get exact
// buckets 0..7, then 4 sub-buckets (two mantissa bits) per power of two.
const histBuckets = 8 + (64-4+1)*4

// Hist is a concurrent log-bucketed latency histogram. The zero value is
// ready to use; all methods are safe for concurrent use.
type Hist struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// bucketOf maps a nanosecond count to its bucket index.
func bucketOf(ns int64) int {
	v := uint64(ns)
	if v < 8 {
		return int(v)
	}
	e := bits.Len64(v) // 4..64
	sub := (v >> (uint(e) - 3)) & 3
	b := 8 + (e-4)*4 + int(sub)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketUpper is the exclusive nanosecond upper bound of bucket b — the
// value quantiles report.
func bucketUpper(b int) int64 {
	if b < 8 {
		return int64(b) + 1
	}
	e := 4 + (b-8)/4
	sub := int64((b - 8) % 4)
	if e >= 63 {
		// The top buckets' bounds would overflow int64; saturate — an
		// observation that large (centuries) is beyond any latency scale.
		return math.MaxInt64
	}
	return (5 + sub) << (uint(e) - 3)
}

// Observe records one duration. Negative durations count as zero.
func (h *Hist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns how many observations the histogram holds.
func (h *Hist) Count() int64 { return h.count.Load() }

// snapshot copies every bucket counter into one local array and returns
// it with its total. Readers (Quantile, Summary) work from the snapshot,
// never the live atomics: a scrape racing Observe sees some consistent
// prefix of the observations instead of mixing bucket counts from
// different instants with a count from a third — which could report a
// quantile past the snapshot's own total, or p50 > p99 across two
// walks.
func (h *Hist) snapshot() (counts [histBuckets]int64, total int64) {
	for b := 0; b < histBuckets; b++ {
		counts[b] = h.counts[b].Load()
		total += counts[b]
	}
	return counts, total
}

// quantileOf computes the q-quantile upper bound from one snapshot.
func quantileOf(counts [histBuckets]int64, total int64, q float64) time.Duration {
	if total <= 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += counts[b]
		if seen >= rank {
			return time.Duration(bucketUpper(b))
		}
	}
	return time.Duration(bucketUpper(histBuckets - 1))
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed durations, within one bucket width (≈19%). With no
// observations it returns 0. The buckets are snapshotted once, so the
// reported rank is consistent even while Observe runs concurrently.
func (h *Hist) Quantile(q float64) time.Duration {
	counts, total := h.snapshot()
	return quantileOf(counts, total, q)
}

// Summary reports the histogram as the standard /metrics fields:
// observation count, mean, and p50/p99 upper bounds, in microseconds.
// All fields derive from one bucket snapshot, so a summary scraped under
// concurrent Observe traffic is internally consistent: count equals the
// snapshot's bucket total and p50 <= p99 always holds.
func (h *Hist) Summary() map[string]any {
	counts, total := h.snapshot()
	out := map[string]any{
		"count":  total,
		"p50_us": float64(quantileOf(counts, total, 0.50)) / 1e3,
		"p99_us": float64(quantileOf(counts, total, 0.99)) / 1e3,
	}
	if total > 0 {
		// The sum atomic may run slightly ahead of the snapshot (an
		// Observe lands its bucket after the walk read it); the mean is a
		// dashboard statistic, and dividing by the snapshot total keeps it
		// within one observation's skew.
		out["mean_us"] = float64(h.sum.Load()) / float64(total) / 1e3
	}
	return out
}

// Handler serves collect() as an indented JSON document — the shape of
// every /metrics endpoint in the repository — or, with ?format=prom, as
// Prometheus text exposition (version 0.0.4), so the per-binary JSON
// pages double as scrape targets for one fleet-wide dashboard. collect
// runs per request, so the page always reflects live counters.
func Handler(collect func() map[string]any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			WritePrometheus(w, collect())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collect()); err != nil {
			// Headers already sent; nothing more to do.
			return
		}
	})
}

// WritePrometheus renders a (possibly nested) metrics map as Prometheus
// text exposition. Nested maps flatten with '_' joins (vetter →
// scan_latency → p99_us becomes vetter_scan_latency_p99_us), names are
// sanitized to the Prometheus alphabet, non-numeric values are dropped
// (Prometheus carries numbers only), and output is sorted so scrapes are
// diffable. Every sample is emitted as an untyped metric — the
// counters/gauges here are all instantaneous reads.
func WritePrometheus(w io.Writer, metrics map[string]any) {
	var lines []string
	flattenProm("", metrics, &lines)
	sort.Strings(lines)
	for _, l := range lines {
		io.WriteString(w, l)
		io.WriteString(w, "\n")
	}
}

// flattenProm walks one metrics subtree, appending "name value" samples.
func flattenProm(prefix string, v any, lines *[]string) {
	switch m := v.(type) {
	case map[string]any:
		for k, sub := range m {
			name := promName(k)
			if prefix != "" {
				name = prefix + "_" + name
			}
			flattenProm(name, sub, lines)
		}
	default:
		f, ok := promValue(v)
		if !ok || prefix == "" {
			return
		}
		*lines = append(*lines, fmt.Sprintf("%s %s", prefix, formatPromFloat(f)))
	}
}

// promValue converts any numeric metric value to float64.
func promValue(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint:
		return float64(n), true
	case uint32:
		return float64(n), true
	case uint64:
		return float64(n), true
	case bool:
		if n {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// formatPromFloat renders a sample value: integers without a decimal
// point, everything else in shortest-round-trip form.
func formatPromFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// promName sanitizes one metric-name segment: every byte outside
// [a-zA-Z0-9_] becomes '_', and a leading digit gains a '_' prefix.
func promName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && c >= '0' && c <= '9' {
			b.WriteByte('_')
		}
		b.WriteByte(c)
	}
	return b.String()
}

// RuntimeStats returns the process-level fields every /metrics page
// carries: resident-set proxies from the Go runtime (heap in use, total
// OS-claimed bytes), GC cycles, and live goroutines.
func RuntimeStats() map[string]any {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return map[string]any{
		"heap_inuse_bytes": ms.HeapInuse,
		"sys_bytes":        ms.Sys,
		"num_gc":           ms.NumGC,
		"goroutines":       runtime.NumGoroutine(),
	}
}
