// Package servemetrics is the shared observability kit of the serving
// tier: a lock-free latency histogram cheap enough to sit on the scan hot
// path, and helpers for the hand-rolled JSON /metrics endpoints that
// kizzlegate, sigserve, and kizzleshard expose — the dashboard surface
// that makes a fleet of replicas operable from one place (scan counts,
// p50/p99 scan latency, matcher versions, cache hit rates, resident-set
// bytes).
//
// The histogram buckets durations logarithmically with two mantissa bits
// (≈19% bucket width), which resolves p50/p99 finely enough for
// operational dashboards at a fixed 2 KiB of atomics per histogram and
// ~15 ns per observation. SLO gating in CI does not read these
// histograms: benchmarks compute exact percentiles from recorded samples
// (see gateway's BenchmarkServe) so the bench gate never inherits bucket
// quantization.
package servemetrics

import (
	"encoding/json"
	"math"
	"math/bits"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"
)

// histBuckets covers 1 ns to beyond an hour: values below 8 ns get exact
// buckets 0..7, then 4 sub-buckets (two mantissa bits) per power of two.
const histBuckets = 8 + (64-4+1)*4

// Hist is a concurrent log-bucketed latency histogram. The zero value is
// ready to use; all methods are safe for concurrent use.
type Hist struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// bucketOf maps a nanosecond count to its bucket index.
func bucketOf(ns int64) int {
	v := uint64(ns)
	if v < 8 {
		return int(v)
	}
	e := bits.Len64(v) // 4..64
	sub := (v >> (uint(e) - 3)) & 3
	b := 8 + (e-4)*4 + int(sub)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketUpper is the exclusive nanosecond upper bound of bucket b — the
// value quantiles report.
func bucketUpper(b int) int64 {
	if b < 8 {
		return int64(b) + 1
	}
	e := 4 + (b-8)/4
	sub := int64((b - 8) % 4)
	if e >= 63 {
		// The top buckets' bounds would overflow int64; saturate — an
		// observation that large (centuries) is beyond any latency scale.
		return math.MaxInt64
	}
	return (5 + sub) << (uint(e) - 3)
}

// Observe records one duration. Negative durations count as zero.
func (h *Hist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns how many observations the histogram holds.
func (h *Hist) Count() int64 { return h.count.Load() }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed durations, within one bucket width (≈19%). With no
// observations it returns 0.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += h.counts[b].Load()
		if seen >= rank {
			return time.Duration(bucketUpper(b))
		}
	}
	return time.Duration(bucketUpper(histBuckets - 1))
}

// Summary reports the histogram as the standard /metrics fields:
// observation count, mean, and p50/p99 upper bounds, in microseconds.
func (h *Hist) Summary() map[string]any {
	n := h.count.Load()
	out := map[string]any{
		"count":  n,
		"p50_us": float64(h.Quantile(0.50)) / 1e3,
		"p99_us": float64(h.Quantile(0.99)) / 1e3,
	}
	if n > 0 {
		out["mean_us"] = float64(h.sum.Load()) / float64(n) / 1e3
	}
	return out
}

// Handler serves collect() as an indented JSON document — the shape of
// every /metrics endpoint in the repository. collect runs per request, so
// the page always reflects live counters.
func Handler(collect func() map[string]any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collect()); err != nil {
			// Headers already sent; nothing more to do.
			return
		}
	})
}

// RuntimeStats returns the process-level fields every /metrics page
// carries: resident-set proxies from the Go runtime (heap in use, total
// OS-claimed bytes), GC cycles, and live goroutines.
func RuntimeStats() map[string]any {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return map[string]any{
		"heap_inuse_bytes": ms.HeapInuse,
		"sys_bytes":        ms.Sys,
		"num_gc":           ms.NumGC,
		"goroutines":       runtime.NumGoroutine(),
	}
}
