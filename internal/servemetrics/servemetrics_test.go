package servemetrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketsMonotonic pins the bucket layout: indices are monotonic in
// the value, every value lands strictly below its bucket's upper bound,
// and upper bounds increase.
func TestBucketsMonotonic(t *testing.T) {
	prev := -1
	for _, ns := range []int64{0, 1, 2, 7, 8, 9, 15, 16, 100, 1000, 999999, 1 << 30, 1 << 45, 1 << 62} {
		b := bucketOf(ns)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", ns, b, prev)
		}
		if ns >= bucketUpper(b) && b < histBuckets-1 {
			t.Fatalf("value %d >= upper bound %d of its bucket %d", ns, bucketUpper(b), b)
		}
		prev = b
	}
	for b := 1; b < histBuckets; b++ {
		// The top buckets saturate at MaxInt64; equality is allowed there.
		if bucketUpper(b) < bucketUpper(b-1) ||
			(bucketUpper(b) == bucketUpper(b-1) && bucketUpper(b) != math.MaxInt64) {
			t.Fatalf("bucketUpper(%d)=%d not above bucketUpper(%d)=%d", b, bucketUpper(b), b-1, bucketUpper(b-1))
		}
	}
}

// TestQuantileWithinBucketWidth checks quantile estimates against exact
// percentiles of the recorded samples: the histogram answer must bound
// the true value from above within one bucket (≤25% high).
func TestQuantileWithinBucketWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Hist
	samples := make([]int64, 5000)
	for i := range samples {
		// Log-uniform over ~1µs..10ms, the scan latency range.
		ns := int64(1000 * (1 + rng.Float64()*9999))
		samples[i] = ns
		h.Observe(time.Duration(ns))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := int64(h.Quantile(q))
		if got < exact {
			t.Errorf("q=%.2f: histogram %d below exact %d", q, got, exact)
		}
		if float64(got) > float64(exact)*1.25+8 {
			t.Errorf("q=%.2f: histogram %d more than a bucket above exact %d", q, got, exact)
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 {
		t.Error("empty histogram must report 0")
	}
	if h.Count() != 0 {
		t.Error("empty histogram count != 0")
	}
}

// TestObserveConcurrent exercises the atomics under the race detector and
// checks no observation is lost.
func TestObserveConcurrent(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	var h Hist
	h.Observe(time.Millisecond)
	handler := Handler(func() map[string]any {
		return map[string]any{"scan_latency": h.Summary(), "runtime": RuntimeStats()}
	})
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("metrics page is not JSON: %v", err)
	}
	lat, ok := doc["scan_latency"].(map[string]any)
	if !ok || lat["count"].(float64) != 1 {
		t.Fatalf("scan_latency missing or wrong: %v", doc)
	}
	if _, ok := doc["runtime"].(map[string]any)["heap_inuse_bytes"]; !ok {
		t.Fatal("runtime stats missing")
	}
}
