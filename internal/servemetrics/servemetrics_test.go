package servemetrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketsMonotonic pins the bucket layout: indices are monotonic in
// the value, every value lands strictly below its bucket's upper bound,
// and upper bounds increase.
func TestBucketsMonotonic(t *testing.T) {
	prev := -1
	for _, ns := range []int64{0, 1, 2, 7, 8, 9, 15, 16, 100, 1000, 999999, 1 << 30, 1 << 45, 1 << 62} {
		b := bucketOf(ns)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", ns, b, prev)
		}
		if ns >= bucketUpper(b) && b < histBuckets-1 {
			t.Fatalf("value %d >= upper bound %d of its bucket %d", ns, bucketUpper(b), b)
		}
		prev = b
	}
	for b := 1; b < histBuckets; b++ {
		// The top buckets saturate at MaxInt64; equality is allowed there.
		if bucketUpper(b) < bucketUpper(b-1) ||
			(bucketUpper(b) == bucketUpper(b-1) && bucketUpper(b) != math.MaxInt64) {
			t.Fatalf("bucketUpper(%d)=%d not above bucketUpper(%d)=%d", b, bucketUpper(b), b-1, bucketUpper(b-1))
		}
	}
}

// TestQuantileWithinBucketWidth checks quantile estimates against exact
// percentiles of the recorded samples: the histogram answer must bound
// the true value from above within one bucket (≤25% high).
func TestQuantileWithinBucketWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Hist
	samples := make([]int64, 5000)
	for i := range samples {
		// Log-uniform over ~1µs..10ms, the scan latency range.
		ns := int64(1000 * (1 + rng.Float64()*9999))
		samples[i] = ns
		h.Observe(time.Duration(ns))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := int64(h.Quantile(q))
		if got < exact {
			t.Errorf("q=%.2f: histogram %d below exact %d", q, got, exact)
		}
		if float64(got) > float64(exact)*1.25+8 {
			t.Errorf("q=%.2f: histogram %d more than a bucket above exact %d", q, got, exact)
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 {
		t.Error("empty histogram must report 0")
	}
	if h.Count() != 0 {
		t.Error("empty histogram count != 0")
	}
}

// TestObserveConcurrent exercises the atomics under the race detector and
// checks no observation is lost.
func TestObserveConcurrent(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	var h Hist
	h.Observe(time.Millisecond)
	handler := Handler(func() map[string]any {
		return map[string]any{"scan_latency": h.Summary(), "runtime": RuntimeStats()}
	})
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("metrics page is not JSON: %v", err)
	}
	lat, ok := doc["scan_latency"].(map[string]any)
	if !ok || lat["count"].(float64) != 1 {
		t.Fatalf("scan_latency missing or wrong: %v", doc)
	}
	if _, ok := doc["runtime"].(map[string]any)["heap_inuse_bytes"]; !ok {
		t.Fatal("runtime stats missing")
	}
}

// TestSummaryConsistentUnderConcurrentObserve is the race-detector guard
// for the snapshot fix: a Summary scraped while Observe mutates the
// buckets must be internally consistent — its count equals the bucket
// total it was computed from, quantiles are monotonic (p50 <= p99), and
// count never exceeds what has been fully observed plus what is still in
// flight, nor shrinks between scrapes.
func TestSummaryConsistentUnderConcurrentObserve(t *testing.T) {
	var h Hist
	const writers, per = 4, 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(1000 + (g*7+i*13)%100000))
			}
		}(g)
	}
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var prevCount int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Summary()
			count := s["count"].(int64)
			p50 := s["p50_us"].(float64)
			p99 := s["p99_us"].(float64)
			if count < prevCount {
				t.Errorf("summary count went backwards: %d -> %d", prevCount, count)
				return
			}
			prevCount = count
			if count > writers*per {
				t.Errorf("summary count %d exceeds total observations %d", count, writers*per)
				return
			}
			if p50 > p99 {
				t.Errorf("p50 %.1fus above p99 %.1fus in one summary (count %d)", p50, p99, count)
				return
			}
			if count > 0 && (p50 <= 0 || p99 <= 0) {
				t.Errorf("non-empty summary with zero quantile: p50=%.1f p99=%.1f count=%d", p50, p99, count)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()
	// Settled state: the snapshot total must equal the true count.
	if got := h.Summary()["count"].(int64); got != writers*per {
		t.Fatalf("settled count = %d, want %d", got, writers*per)
	}
}

// TestHandlerServesPrometheus pins the ?format=prom exposition: flattened
// sorted names, numeric samples only, nested maps joined with '_'.
func TestHandlerServesPrometheus(t *testing.T) {
	var h Hist
	h.Observe(time.Millisecond)
	handler := Handler(func() map[string]any {
		return map[string]any{
			"vetter": map[string]any{
				"scanned":      int64(7),
				"scan_latency": h.Summary(),
			},
			"store_version": int64(3),
			"mode":          "serving", // non-numeric: dropped
			"9weird name":   1.5,
		}
	})
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prom", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain exposition", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"store_version 3\n",
		"vetter_scanned 7\n",
		"vetter_scan_latency_count 1\n",
		"_9weird_name 1.5\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom exposition missing %q in:\n%s", want, body)
		}
	}
	if strings.Contains(body, "serving") {
		t.Error("non-numeric value leaked into prom exposition")
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if !sort.StringsAreSorted(lines) {
		t.Error("prom exposition is not sorted")
	}
}
