package textdist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kizzle/internal/jstoken"
)

func syms(xs ...int) []jstoken.Symbol {
	out := make([]jstoken.Symbol, len(xs))
	for i, x := range xs {
		out[i] = jstoken.Symbol(x)
	}
	return out
}

func fromString(s string) []jstoken.Symbol {
	out := make([]jstoken.Symbol, len(s))
	for i := range s {
		out[i] = jstoken.Symbol(s[i])
	}
	return out
}

func TestDistanceTable(t *testing.T) {
	tests := []struct {
		name string
		a, b string
		want int
	}{
		{"both empty", "", "", 0},
		{"a empty", "", "abc", 3},
		{"b empty", "abc", "", 3},
		{"equal", "abc", "abc", 0},
		{"single sub", "abc", "axc", 1},
		{"single insert", "abc", "abxc", 1},
		{"single delete", "abc", "ac", 1},
		{"kitten sitting", "kitten", "sitting", 3},
		{"flaw lawn", "flaw", "lawn", 2},
		{"disjoint", "aaaa", "bbbb", 4},
		{"prefix", "abcdef", "abc", 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, b := fromString(tt.a), fromString(tt.b)
			if got := Distance(a, b); got != tt.want {
				t.Errorf("Distance(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
			// Symmetry.
			if got := Distance(b, a); got != tt.want {
				t.Errorf("Distance(%q,%q) = %d, want %d (symmetry)", tt.b, tt.a, got, tt.want)
			}
		})
	}
}

func TestDistanceWithinAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		a := randSeq(rng, rng.Intn(40))
		b := randSeq(rng, rng.Intn(40))
		full := Distance(a, b)
		for _, bound := range []int{0, 1, 2, full - 1, full, full + 1, 50} {
			if bound < 0 {
				continue
			}
			got, ok := DistanceWithin(a, b, bound)
			if full <= bound {
				if !ok || got != full {
					t.Fatalf("DistanceWithin(%v,%v,%d) = (%d,%v), want (%d,true)", a, b, bound, got, ok, full)
				}
			} else if ok {
				t.Fatalf("DistanceWithin(%v,%v,%d) = (%d,true), want false (full=%d)", a, b, bound, got, full)
			}
		}
	}
}

func TestDistanceWithinNegativeBound(t *testing.T) {
	if _, ok := DistanceWithin(syms(1), syms(1), -1); ok {
		t.Error("negative bound must report false")
	}
}

func TestDistanceWithinEmpty(t *testing.T) {
	d, ok := DistanceWithin(nil, syms(1, 2, 3), 3)
	if !ok || d != 3 {
		t.Errorf("got (%d,%v), want (3,true)", d, ok)
	}
	if _, ok := DistanceWithin(nil, syms(1, 2, 3), 2); ok {
		t.Error("bound 2 must fail for distance 3")
	}
}

func TestNormalized(t *testing.T) {
	tests := []struct {
		name string
		a, b string
		want float64
	}{
		{"identical", "abcd", "abcd", 0},
		{"empty", "", "", 0},
		{"one of four", "abcd", "abxd", 0.25},
		{"total", "ab", "xy", 1},
		{"against empty", "abcd", "", 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Normalized(fromString(tt.a), fromString(tt.b)); got != tt.want {
				t.Errorf("Normalized = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestWithinNormalized(t *testing.T) {
	// 100 symbols, 5 substitutions: normalized distance 0.05.
	a := randSeq(rand.New(rand.NewSource(1)), 100)
	b := make([]jstoken.Symbol, len(a))
	copy(b, a)
	for i := 0; i < 5; i++ {
		b[i*17] ^= 0x7fff
	}
	if !WithinNormalized(a, b, 0.10) {
		t.Error("0.05 distance must be within eps 0.10")
	}
	if WithinNormalized(a, b, 0.01) {
		t.Error("0.05 distance must not be within eps 0.01")
	}
}

func randSeq(rng *rand.Rand, n int) []jstoken.Symbol {
	out := make([]jstoken.Symbol, n)
	for i := range out {
		out[i] = jstoken.Symbol(rng.Intn(8) + 1)
	}
	return out
}

// Property: triangle inequality d(a,c) <= d(a,b) + d(b,c), required for the
// distance to behave as a metric under DBSCAN.
func TestTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		a := randSeq(rng, rng.Intn(25))
		b := randSeq(rng, rng.Intn(25))
		c := randSeq(rng, rng.Intn(25))
		if Distance(a, c) > Distance(a, b)+Distance(b, c) {
			t.Fatalf("triangle inequality violated: a=%v b=%v c=%v", a, b, c)
		}
	}
}

// Property: identity of indiscernibles and non-negativity.
func TestMetricAxiomsProperty(t *testing.T) {
	f := func(xs, ys []byte) bool {
		a := make([]jstoken.Symbol, len(xs))
		for i, x := range xs {
			a[i] = jstoken.Symbol(x % 6)
		}
		b := make([]jstoken.Symbol, len(ys))
		for i, y := range ys {
			b[i] = jstoken.Symbol(y % 6)
		}
		d := Distance(a, b)
		if d < 0 {
			return false
		}
		if d == 0 {
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return Distance(a, a) == 0 && Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDistanceFull(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randSeq(rng, 500)
	y := randSeq(rng, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Distance(x, y)
	}
}

func BenchmarkDistanceBanded(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randSeq(rng, 500)
	y := make([]jstoken.Symbol, len(x))
	copy(y, x)
	for i := 0; i < 20; i++ {
		y[i*23] ^= 0x0f
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DistanceWithin(x, y, 50)
	}
}

// TestDistanceWithinMatchesDistance: for random pairs and bounds, the
// banded computation must agree exactly with the full DP — same distance
// when within, and a rejection exactly when the true distance exceeds the
// bound.
func TestDistanceWithinMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var scratch Scratch
	for iter := 0; iter < 2000; iter++ {
		a := randSeq(rng, rng.Intn(80))
		b := append([]jstoken.Symbol(nil), a...)
		// Mutate b: random edits so distances cover the whole range.
		for k := rng.Intn(20); k > 0 && len(b) > 0; k-- {
			switch rng.Intn(3) {
			case 0:
				b[rng.Intn(len(b))] = jstoken.Symbol(1 + rng.Intn(12))
			case 1:
				i := rng.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			case 2:
				i := rng.Intn(len(b) + 1)
				b = append(b[:i], append([]jstoken.Symbol{jstoken.Symbol(1 + rng.Intn(12))}, b[i:]...)...)
			}
		}
		want := Distance(a, b)
		maxDist := rng.Intn(30)
		got, ok := DistanceWithin(a, b, maxDist)
		if want <= maxDist {
			if !ok || got != want {
				t.Fatalf("DistanceWithin(%d) = (%d,%v), want (%d,true)", maxDist, got, ok, want)
			}
		} else if ok {
			t.Fatalf("DistanceWithin(%d) = (%d,true), true distance %d", maxDist, got, want)
		}
		// The reusable scratch must agree with the allocating forms even
		// when reused across differently-sized computations.
		if sd := scratch.Distance(a, b); sd != want {
			t.Fatalf("Scratch.Distance = %d, want %d", sd, want)
		}
		sg, sok := scratch.DistanceWithin(a, b, maxDist)
		if sg != got || sok != ok {
			t.Fatalf("Scratch.DistanceWithin = (%d,%v), want (%d,%v)", sg, sok, got, ok)
		}
		eps := rng.Float64() * 0.3
		if w1, w2 := WithinNormalized(a, b, eps), scratch.WithinNormalized(a, b, eps); w1 != w2 {
			t.Fatalf("WithinNormalized disagreement: %v vs %v", w1, w2)
		}
	}
}

// TestCandidateLenBoundsConservative: the length window used by the
// clustering index must never exclude a pair the exact predicate accepts.
func TestCandidateLenBoundsConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var scratch Scratch
	for iter := 0; iter < 3000; iter++ {
		a := randSeq(rng, 1+rng.Intn(120))
		b := randSeq(rng, 1+rng.Intn(120))
		eps := []float64{0.05, 0.10, 0.25}[rng.Intn(3)]
		if scratch.WithinNormalized(a, b, eps) {
			if len(b) < MinCandidateLen(len(a), eps) || len(b) > MaxCandidateLen(len(a), eps) {
				t.Fatalf("len(a)=%d len(b)=%d eps=%.2f within eps but outside window [%d,%d]",
					len(a), len(b), eps, MinCandidateLen(len(a), eps), MaxCandidateLen(len(a), eps))
			}
		}
	}
}

// TestScratchAllocFree: after warm-up, Scratch methods must not allocate.
func TestScratchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randSeq(rng, 200), randSeq(rng, 210)
	var scratch Scratch
	scratch.Distance(a, b) // warm up rows
	if allocs := testing.AllocsPerRun(50, func() {
		scratch.Distance(a, b)
		scratch.DistanceWithin(a, b, 30)
		scratch.WithinNormalized(a, b, 0.1)
	}); allocs != 0 {
		t.Errorf("Scratch path allocates %.1f per run, want 0", allocs)
	}
}

// BenchmarkDistanceWithin contrasts the allocating and scratch-reusing
// forms of the clustering hot path.
func BenchmarkDistanceWithin(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x, y := randSeq(rng, 400), randSeq(rng, 405)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			DistanceWithin(x, y, 40)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		var s Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.DistanceWithin(x, y, 40)
		}
	})
}

// referenceDistanceWithin is the pre-block-form banded implementation,
// kept verbatim as the scalar reference: per-cell inf guards, a bounds
// branch at the band edge, and a branchy three-way min. The rewritten
// inner loop (contiguous active slice, sentinel cell, branch-free min3)
// must reproduce it cell for cell; TestDistanceWithinMatchesReference
// pins that equivalence on the full (distance, ok) contract.
func referenceDistanceWithin(s *Scratch, a, b []jstoken.Symbol, maxDist int) (int, bool) {
	if maxDist < 0 {
		return 0, false
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b)-len(a) > maxDist {
		return 0, false
	}
	a, b = trimCommon(a, b)
	if len(a) == 0 {
		return len(b), true
	}

	const inf = int(^uint(0) >> 1)
	width := 2*maxDist + 1
	prev, curr := s.rows(width)
	for k := 0; k < width; k++ {
		j := 0 - maxDist + k
		if j >= 0 && j <= len(b) {
			prev[k] = j
		} else {
			prev[k] = inf
		}
	}
	for i := 1; i <= len(a); i++ {
		rowMin := inf
		ai := a[i-1]
		kLo := 0
		if maxDist > i {
			kLo = maxDist - i
		}
		kHi := width
		if over := i + maxDist - len(b); over > 0 {
			kHi = width - over
		}
		left := inf
		k := kLo
		if kLo > 0 {
			curr[kLo-1] = inf
		}
		if i <= maxDist {
			curr[kLo] = i
			rowMin = i
			left = i
			k = kLo + 1
		}
		off := i - maxDist - 1
		for ; k < kHi; k++ {
			best := inf
			if pk := prev[k]; pk != inf {
				if ai == b[off+k] {
					best = pk
				} else {
					best = pk + 1
				}
			}
			if k+1 < width {
				if p1 := prev[k+1]; p1 != inf && p1+1 < best {
					best = p1 + 1
				}
			}
			if left != inf && left+1 < best {
				best = left + 1
			}
			curr[k] = best
			left = best
			if best < rowMin {
				rowMin = best
			}
		}
		if kHi < width {
			curr[kHi] = inf
		}
		if rowMin > maxDist {
			return 0, false
		}
		prev, curr = curr, prev
	}
	s.prev, s.curr = prev[:cap(prev)], curr[:cap(curr)]
	k := len(b) - len(a) + maxDist
	if k < 0 || k >= width || prev[k] == inf || prev[k] > maxDist {
		return 0, false
	}
	return prev[k], true
}

// TestDistanceWithinMatchesReference pins the flat inner loop against the
// scalar reference across random near-duplicate pairs, every bound from 0
// to beyond the true distance, and the degenerate shapes (empty, equal,
// single-symbol, maximal junk).
func TestDistanceWithinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	randSeq := func(n int) []jstoken.Symbol {
		out := make([]jstoken.Symbol, n)
		for i := range out {
			out[i] = jstoken.Symbol(rng.Intn(7) + 1)
		}
		return out
	}
	mutate := func(a []jstoken.Symbol, edits int) []jstoken.Symbol {
		out := append([]jstoken.Symbol(nil), a...)
		for e := 0; e < edits; e++ {
			switch op := rng.Intn(3); {
			case op == 0 && len(out) > 0: // substitute
				out[rng.Intn(len(out))] = jstoken.Symbol(rng.Intn(7) + 1)
			case op == 1: // insert
				p := rng.Intn(len(out) + 1)
				out = append(out[:p], append([]jstoken.Symbol{jstoken.Symbol(rng.Intn(7) + 1)}, out[p:]...)...)
			case op == 2 && len(out) > 0: // delete
				p := rng.Intn(len(out))
				out = append(out[:p], out[p+1:]...)
			}
		}
		return out
	}
	var got, want Scratch
	check := func(a, b []jstoken.Symbol, maxDist int) {
		t.Helper()
		gd, gok := got.DistanceWithin(a, b, maxDist)
		wd, wok := referenceDistanceWithin(&want, a, b, maxDist)
		if gd != wd || gok != wok {
			t.Fatalf("DistanceWithin(len %d, len %d, maxDist=%d) = (%d, %v), reference (%d, %v)",
				len(a), len(b), maxDist, gd, gok, wd, wok)
		}
	}
	for trial := 0; trial < 400; trial++ {
		a := randSeq(rng.Intn(60))
		b := mutate(a, rng.Intn(8))
		for maxDist := 0; maxDist <= 10; maxDist++ {
			check(a, b, maxDist)
		}
	}
	// Unrelated sequences: every cell in the band saturates.
	for trial := 0; trial < 50; trial++ {
		check(randSeq(rng.Intn(40)), randSeq(rng.Intn(40)), rng.Intn(6))
	}
	check(nil, nil, 0)
	check(nil, syms(1, 2, 3), 3)
	check(syms(1), syms(2), 1)
}
