package textdist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kizzle/internal/jstoken"
)

func syms(xs ...int) []jstoken.Symbol {
	out := make([]jstoken.Symbol, len(xs))
	for i, x := range xs {
		out[i] = jstoken.Symbol(x)
	}
	return out
}

func fromString(s string) []jstoken.Symbol {
	out := make([]jstoken.Symbol, len(s))
	for i := range s {
		out[i] = jstoken.Symbol(s[i])
	}
	return out
}

func TestDistanceTable(t *testing.T) {
	tests := []struct {
		name string
		a, b string
		want int
	}{
		{"both empty", "", "", 0},
		{"a empty", "", "abc", 3},
		{"b empty", "abc", "", 3},
		{"equal", "abc", "abc", 0},
		{"single sub", "abc", "axc", 1},
		{"single insert", "abc", "abxc", 1},
		{"single delete", "abc", "ac", 1},
		{"kitten sitting", "kitten", "sitting", 3},
		{"flaw lawn", "flaw", "lawn", 2},
		{"disjoint", "aaaa", "bbbb", 4},
		{"prefix", "abcdef", "abc", 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, b := fromString(tt.a), fromString(tt.b)
			if got := Distance(a, b); got != tt.want {
				t.Errorf("Distance(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
			// Symmetry.
			if got := Distance(b, a); got != tt.want {
				t.Errorf("Distance(%q,%q) = %d, want %d (symmetry)", tt.b, tt.a, got, tt.want)
			}
		})
	}
}

func TestDistanceWithinAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		a := randSeq(rng, rng.Intn(40))
		b := randSeq(rng, rng.Intn(40))
		full := Distance(a, b)
		for _, bound := range []int{0, 1, 2, full - 1, full, full + 1, 50} {
			if bound < 0 {
				continue
			}
			got, ok := DistanceWithin(a, b, bound)
			if full <= bound {
				if !ok || got != full {
					t.Fatalf("DistanceWithin(%v,%v,%d) = (%d,%v), want (%d,true)", a, b, bound, got, ok, full)
				}
			} else if ok {
				t.Fatalf("DistanceWithin(%v,%v,%d) = (%d,true), want false (full=%d)", a, b, bound, got, full)
			}
		}
	}
}

func TestDistanceWithinNegativeBound(t *testing.T) {
	if _, ok := DistanceWithin(syms(1), syms(1), -1); ok {
		t.Error("negative bound must report false")
	}
}

func TestDistanceWithinEmpty(t *testing.T) {
	d, ok := DistanceWithin(nil, syms(1, 2, 3), 3)
	if !ok || d != 3 {
		t.Errorf("got (%d,%v), want (3,true)", d, ok)
	}
	if _, ok := DistanceWithin(nil, syms(1, 2, 3), 2); ok {
		t.Error("bound 2 must fail for distance 3")
	}
}

func TestNormalized(t *testing.T) {
	tests := []struct {
		name string
		a, b string
		want float64
	}{
		{"identical", "abcd", "abcd", 0},
		{"empty", "", "", 0},
		{"one of four", "abcd", "abxd", 0.25},
		{"total", "ab", "xy", 1},
		{"against empty", "abcd", "", 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Normalized(fromString(tt.a), fromString(tt.b)); got != tt.want {
				t.Errorf("Normalized = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestWithinNormalized(t *testing.T) {
	// 100 symbols, 5 substitutions: normalized distance 0.05.
	a := randSeq(rand.New(rand.NewSource(1)), 100)
	b := make([]jstoken.Symbol, len(a))
	copy(b, a)
	for i := 0; i < 5; i++ {
		b[i*17] ^= 0x7fff
	}
	if !WithinNormalized(a, b, 0.10) {
		t.Error("0.05 distance must be within eps 0.10")
	}
	if WithinNormalized(a, b, 0.01) {
		t.Error("0.05 distance must not be within eps 0.01")
	}
}

func randSeq(rng *rand.Rand, n int) []jstoken.Symbol {
	out := make([]jstoken.Symbol, n)
	for i := range out {
		out[i] = jstoken.Symbol(rng.Intn(8) + 1)
	}
	return out
}

// Property: triangle inequality d(a,c) <= d(a,b) + d(b,c), required for the
// distance to behave as a metric under DBSCAN.
func TestTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		a := randSeq(rng, rng.Intn(25))
		b := randSeq(rng, rng.Intn(25))
		c := randSeq(rng, rng.Intn(25))
		if Distance(a, c) > Distance(a, b)+Distance(b, c) {
			t.Fatalf("triangle inequality violated: a=%v b=%v c=%v", a, b, c)
		}
	}
}

// Property: identity of indiscernibles and non-negativity.
func TestMetricAxiomsProperty(t *testing.T) {
	f := func(xs, ys []byte) bool {
		a := make([]jstoken.Symbol, len(xs))
		for i, x := range xs {
			a[i] = jstoken.Symbol(x % 6)
		}
		b := make([]jstoken.Symbol, len(ys))
		for i, y := range ys {
			b[i] = jstoken.Symbol(y % 6)
		}
		d := Distance(a, b)
		if d < 0 {
			return false
		}
		if d == 0 {
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return Distance(a, a) == 0 && Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDistanceFull(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randSeq(rng, 500)
	y := randSeq(rng, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Distance(x, y)
	}
}

func BenchmarkDistanceBanded(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randSeq(rng, 500)
	y := make([]jstoken.Symbol, len(x))
	copy(y, x)
	for i := 0; i < 20; i++ {
		y[i*23] ^= 0x0f
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DistanceWithin(x, y, 50)
	}
}
