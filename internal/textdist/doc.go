// Package textdist implements the edit-distance primitives Kizzle's
// clustering stage uses to compare abstract token sequences. The paper
// clusters samples with DBSCAN "using the edit distance between token
// strings as a means of determining the distance between any two samples"
// with a normalized threshold of 0.10.
//
// Two implementations are provided: a full O(n·m) dynamic program and a
// banded variant that abandons early once the distance provably exceeds a
// caller-supplied bound. DBSCAN only needs to know whether two samples are
// within eps of each other, so the banded variant is the hot path. Its
// inner loop is written branch-free — min chains over ints that compile
// to conditional moves instead of data-dependent branches — because the
// match/mismatch pattern of token sequences is adversarially
// unpredictable to a branch predictor; the band-edge bookkeeping stays
// outside the loop.
//
// Both are available as package functions (which allocate their DP rows
// per call) and as methods on a reusable Scratch. Clustering issues
// millions of region queries per batch; a per-worker Scratch makes the
// whole distance stage allocation-free after warm-up.
package textdist
