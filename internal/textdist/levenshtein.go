// Package textdist implements the edit-distance primitives Kizzle's
// clustering stage uses to compare abstract token sequences. The paper
// clusters samples with DBSCAN "using the edit distance between token
// strings as a means of determining the distance between any two samples"
// with a normalized threshold of 0.10.
//
// Two implementations are provided: a full O(n·m) dynamic program and a
// banded variant that abandons early once the distance provably exceeds a
// caller-supplied bound. DBSCAN only needs to know whether two samples are
// within eps of each other, so the banded variant is the hot path.
package textdist

import "kizzle/internal/jstoken"

// Distance computes the Levenshtein edit distance (unit insert, delete and
// substitute costs) between two symbol sequences using two rolling rows.
func Distance(a, b []jstoken.Symbol) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	// Keep the inner loop over the shorter sequence.
	if len(b) > len(a) {
		a, b = b, a
	}
	prev := make([]int, len(b)+1)
	curr := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		ai := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ai == b[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}

// DistanceWithin computes the Levenshtein distance between a and b if it is
// at most maxDist, using a band of width 2·maxDist+1 around the diagonal.
// If the true distance exceeds maxDist it returns (0, false). This runs in
// O(maxDist · max(len)) time, which is what makes DBSCAN over thousands of
// samples per partition tractable.
func DistanceWithin(a, b []jstoken.Symbol, maxDist int) (int, bool) {
	if maxDist < 0 {
		return 0, false
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	// The length difference is a lower bound on the distance.
	if len(b)-len(a) > maxDist {
		return 0, false
	}
	if len(a) == 0 {
		return len(b), true
	}

	const inf = int(^uint(0) >> 1)
	width := 2*maxDist + 1
	prev := make([]int, width)
	curr := make([]int, width)
	// Row i stores cells j in [i-maxDist, i+maxDist]; index k maps to
	// j = i - maxDist + k.
	for k := 0; k < width; k++ {
		j := 0 - maxDist + k
		if j >= 0 && j <= len(b) {
			prev[k] = j
		} else {
			prev[k] = inf
		}
	}
	for i := 1; i <= len(a); i++ {
		rowMin := inf
		ai := a[i-1]
		for k := 0; k < width; k++ {
			j := i - maxDist + k
			if j < 0 || j > len(b) {
				curr[k] = inf
				continue
			}
			if j == 0 {
				curr[k] = i
				rowMin = min2(rowMin, i)
				continue
			}
			best := inf
			// Substitution / match: prev row, same k.
			if prev[k] != inf {
				cost := 1
				if ai == b[j-1] {
					cost = 0
				}
				best = prev[k] + cost
			}
			// Deletion from a: prev row, k+1 (same j).
			if k+1 < width && prev[k+1] != inf && prev[k+1]+1 < best {
				best = prev[k+1] + 1
			}
			// Insertion into a: current row, k-1 (j-1).
			if k-1 >= 0 && curr[k-1] != inf && curr[k-1]+1 < best {
				best = curr[k-1] + 1
			}
			curr[k] = best
			rowMin = min2(rowMin, best)
		}
		if rowMin > maxDist {
			return 0, false
		}
		prev, curr = curr, prev
	}
	k := len(b) - len(a) + maxDist
	if k < 0 || k >= width || prev[k] == inf || prev[k] > maxDist {
		return 0, false
	}
	return prev[k], true
}

// Normalized returns the edit distance between a and b divided by the
// length of the longer sequence, the quantity the paper thresholds at 0.10.
// Two empty sequences have distance 0.
func Normalized(a, b []jstoken.Symbol) float64 {
	n := max2(len(a), len(b))
	if n == 0 {
		return 0
	}
	return float64(Distance(a, b)) / float64(n)
}

// WithinNormalized reports whether the normalized edit distance between a
// and b is at most eps, using the banded early-abandon computation.
func WithinNormalized(a, b []jstoken.Symbol, eps float64) bool {
	n := max2(len(a), len(b))
	if n == 0 {
		return true
	}
	maxDist := int(eps * float64(n))
	_, ok := DistanceWithin(a, b, maxDist)
	return ok
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }
