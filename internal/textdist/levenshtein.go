package textdist

import "kizzle/internal/jstoken"

// Scratch holds reusable dynamic-programming rows for distance
// computations. The zero value is ready to use. A Scratch is not safe for
// concurrent use; give each worker goroutine its own.
type Scratch struct {
	prev, curr []int
}

// trimCommon strips the shared prefix and suffix of a and b. The
// Levenshtein distance is invariant under both trims, and the sequences
// DBSCAN compares are near-duplicates of one another (that is what a
// cluster is), so a linear scan routinely removes most of the O(d·n)
// dynamic program.
func trimCommon(a, b []jstoken.Symbol) ([]jstoken.Symbol, []jstoken.Symbol) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	p := 0
	for p < n && a[p] == b[p] {
		p++
	}
	a, b = a[p:], b[p:]
	n = len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0
	for s < n && a[len(a)-1-s] == b[len(b)-1-s] {
		s++
	}
	return a[:len(a)-s], b[:len(b)-s]
}

// rows returns the two DP rows, each with capacity at least n, without
// clearing them (every algorithm below initializes the cells it reads).
func (s *Scratch) rows(n int) (prev, curr []int) {
	if cap(s.prev) < n {
		s.prev = make([]int, n)
		s.curr = make([]int, n)
	}
	return s.prev[:n], s.curr[:n]
}

// Distance computes the Levenshtein edit distance (unit insert, delete and
// substitute costs) between two symbol sequences using two rolling rows.
func (s *Scratch) Distance(a, b []jstoken.Symbol) int {
	a, b = trimCommon(a, b)
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	// Keep the inner loop over the shorter sequence.
	if len(b) > len(a) {
		a, b = b, a
	}
	prev, curr := s.rows(len(b) + 1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		ai := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ai == b[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	s.prev, s.curr = prev[:cap(prev)], curr[:cap(curr)]
	return prev[len(b)]
}

// DistanceWithin computes the Levenshtein distance between a and b if it is
// at most maxDist, using a band of width 2·maxDist+1 around the diagonal.
// If the true distance exceeds maxDist it returns (0, false). This runs in
// O(maxDist · max(len)) time, which is what makes DBSCAN over thousands of
// samples per partition tractable.
func (s *Scratch) DistanceWithin(a, b []jstoken.Symbol, maxDist int) (int, bool) {
	if maxDist < 0 {
		return 0, false
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	// The length difference is a lower bound on the distance.
	if len(b)-len(a) > maxDist {
		return 0, false
	}
	// Both trims drop the same count from each side, so a stays the
	// shorter sequence and the length difference (≤ maxDist, just
	// checked) is preserved.
	a, b = trimCommon(a, b)
	if len(a) == 0 {
		return len(b), true
	}

	// inf is "unreachable" for banded cells. It is deliberately far below
	// the integer ceiling: the branch-free inner loop adds to inf cells
	// instead of guarding them, and each row grows a cell by at most 1, so
	// inf + len(a) can never overflow (or dip below any real distance,
	// which stays <= maxDist+1 per the early abandon).
	const inf = int(^uint(0) >> 2)
	width := 2*maxDist + 1
	// One sentinel cell past the band: prev[width] reads as inf so the
	// deletion source prev[k+1] needs no bounds branch at the band edge.
	prev, curr := s.rows(width + 1)
	prev[width], curr[width] = inf, inf
	// Row i stores cells j in [i-maxDist, i+maxDist]; index k maps to
	// j = i - maxDist + k.
	for k := 0; k < width; k++ {
		j := 0 - maxDist + k
		if j >= 0 && j <= len(b) {
			prev[k] = j
		} else {
			prev[k] = inf
		}
	}
	for i := 1; i <= len(a); i++ {
		rowMin := inf
		ai := a[i-1]
		// Active cells of this row: k with 0 <= j <= len(b). Cells outside
		// are never read by later rows except the two adjacent to the
		// active range, which are set to inf explicitly below.
		kLo := 0
		if maxDist > i {
			kLo = maxDist - i // j >= 0
		}
		kHi := width
		if over := i + maxDist - len(b); over > 0 {
			kHi = width - over // j <= len(b)
		}
		left := inf // curr[k-1] of the previous active iteration
		k := kLo
		if kLo > 0 {
			curr[kLo-1] = inf
		}
		if i <= maxDist {
			// j == 0 boundary cell, present at kLo while i <= maxDist.
			curr[kLo] = i
			rowMin = i
			left = i
			k = kLo + 1
		}
		// off maps k to the b index j-1 = i - maxDist + k - 1. Every k in
		// [k, kHi) has j in [1, len(b)], so the whole active range reads a
		// contiguous slice of b with no per-cell guards: inf cells take
		// part in the min like any other value and simply never win.
		off := i - maxDist - 1
		for ; k < kHi; k++ {
			// Substitution / match: prev row, same k. b2i compiles to a
			// flag set, not a branch.
			d := prev[k] + b2i(ai != b[off+k])
			// Deletion from a: prev row, k+1 (same j; sentinel at the
			// band edge). Insertion into a: current row, k-1 (j-1). Both
			// mins compile to conditional moves.
			if v := prev[k+1] + 1; v < d {
				d = v
			}
			if v := left + 1; v < d {
				d = v
			}
			curr[k] = d
			left = d
			if d < rowMin {
				rowMin = d
			}
		}
		if kHi < width {
			curr[kHi] = inf
		}
		if rowMin > maxDist {
			return 0, false
		}
		prev, curr = curr, prev
	}
	s.prev, s.curr = prev[:cap(prev)], curr[:cap(curr)]
	k := len(b) - len(a) + maxDist
	if k < 0 || k >= width || prev[k] > maxDist {
		return 0, false
	}
	return prev[k], true
}

// b2i converts a bool to 0 or 1 without a branch (the compiler emits a
// flag-set instruction for this form).
func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

// Normalized returns the edit distance between a and b divided by the
// length of the longer sequence, the quantity the paper thresholds at 0.10.
// Two empty sequences have distance 0.
func (s *Scratch) Normalized(a, b []jstoken.Symbol) float64 {
	n := max2(len(a), len(b))
	if n == 0 {
		return 0
	}
	return float64(s.Distance(a, b)) / float64(n)
}

// WithinNormalized reports whether the normalized edit distance between a
// and b is at most eps, using the banded early-abandon computation.
func (s *Scratch) WithinNormalized(a, b []jstoken.Symbol, eps float64) bool {
	n := max2(len(a), len(b))
	if n == 0 {
		return true
	}
	maxDist := int(eps * float64(n))
	_, ok := s.DistanceWithin(a, b, maxDist)
	return ok
}

// MaxCandidateLen returns the largest sequence length that can still be
// within normalized distance eps of a sequence of length n, i.e. the upper
// edge of the length window the clustering index prunes with. The bound is
// conservative (it may admit a length the exact check then rejects, never
// the reverse).
func MaxCandidateLen(n int, eps float64) int {
	if eps >= 1 {
		return int(^uint(0) >> 1)
	}
	return int(float64(n)/(1-eps)) + 1
}

// MinCandidateLen is the lower edge of the eps length window for a
// sequence of length n, conservative in the same direction.
func MinCandidateLen(n int, eps float64) int {
	m := n - int(eps*float64(n)) - 1
	if m < 0 {
		return 0
	}
	return m
}

// Distance computes the Levenshtein edit distance with freshly allocated
// rows. Hot paths should use a per-worker Scratch instead.
func Distance(a, b []jstoken.Symbol) int {
	var s Scratch
	return s.Distance(a, b)
}

// DistanceWithin is the allocating form of Scratch.DistanceWithin.
func DistanceWithin(a, b []jstoken.Symbol, maxDist int) (int, bool) {
	var s Scratch
	return s.DistanceWithin(a, b, maxDist)
}

// Normalized is the allocating form of Scratch.Normalized.
func Normalized(a, b []jstoken.Symbol) float64 {
	var s Scratch
	return s.Normalized(a, b)
}

// WithinNormalized is the allocating form of Scratch.WithinNormalized.
func WithinNormalized(a, b []jstoken.Symbol, eps float64) bool {
	var s Scratch
	return s.WithinNormalized(a, b, eps)
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }
