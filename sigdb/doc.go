// Package sigdb is the distribution side of the paper's chosen deployment
// format: "AV signatures enjoy a well-established deployment channel with
// frequent, automatic updates for signature consumers." It provides a
// versioned, optionally file-backed signature store, an HTTP handler that
// serves incremental updates, and a polling client that keeps a
// consumer's matcher current — the loop that lets Kizzle push a new
// signature to endpoints within hours of a kit mutation.
//
// The wire is conditional and delta-aware at every layer, sized for ten
// thousand replicas polling one publisher. Store.Publish does not bump
// the version for byte-identical sets, so steady-state recompiles cost
// pollers a 304. The handler carries an ETag ("vN") and honors
// If-None-Match; with ?since=V&delta=1 it serves only the families that
// changed since V (when per-family history for V is still retained and
// the delta is actually smaller), and the client reconstructs the
// byte-identical full snapshot from its previous one — verified, and
// falling back to one full fetch on any mismatch. The client validates
// every update by compiling it (incrementally, per changed family, via
// kizzle.MatcherCache) before reporting it, and exposes that compiled
// matcher so deployments never pay for a second compile. Poll spreads
// replica fetches with ±jitter so fleets do not synchronize.
package sigdb
