// Package sigdb is the distribution side of the paper's chosen deployment
// format: "AV signatures enjoy a well-established deployment channel with
// frequent, automatic updates for signature consumers." It provides a
// versioned, optionally file-backed signature store, an HTTP handler that
// serves incremental updates (GET ?since=version → 304 or a full
// snapshot) and accepts pushed signature sets (POST, validated by
// compilation before they can deploy), and a polling client that keeps a
// consumer's matcher current — the loop that lets Kizzle push a new
// signature to endpoints within hours of a kit mutation. Store.Publish is
// the delta-aware entry point recompilation loops use: byte-identical
// sets do not bump the version, so steady-state recompiles never force
// the channel's consumers to re-fetch or recompile anything.
package sigdb
