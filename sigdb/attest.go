package sigdb

// Dual-path publish certification (diverse double-compiling for the
// signature publisher, after Wheeler's DDC): a publish lands only when
// two intentionally different compile paths produced bit-identical
// signature sets, and every installed version carries a signed,
// content-addressed attestation in an append-only audit log. This file
// holds the attestation and audit-log machinery; the verifier that
// actually runs the second compile path lives in cmd/sigserve.
//
// The audit log is a hash chain: each record carries the previous
// record's digest and its own, so truncation and tampering are
// detectable, and each attestation additionally pins the chain prefix it
// was appended after. Records are JSONL on disk (alongside the store
// file, at <store>.audit); a corrupt tail recovers to the longest valid
// prefix — the log degrades to less history, never to fabricated
// history.

import (
	"bufio"
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"kizzle"
)

// PathDescriptor identifies one compile execution path for provenance:
// where the clustering ran, how work was dispatched, and which schedule
// variation was applied. Two attested paths should differ in as many
// fields as possible — that difference is what the bit-identical
// agreement certifies against.
type PathDescriptor struct {
	// Mode is "in-process" or "fleet".
	Mode string `json:"mode"`
	// Shards is the fleet size (0 for in-process).
	Shards int `json:"shards,omitempty"`
	// Dispatch is "stream" or "batch".
	Dispatch string `json:"dispatch"`
	// Affinity reports whether the fleet's locality layer was active.
	Affinity bool `json:"affinity,omitempty"`
	// Seed is the schedule-permutation seed (0 = canonical schedule).
	Seed int64 `json:"seed,omitempty"`
	// Profile names the ingest profile the corpus was compiled under
	// ("" = the default js profile, the pre-profile record form).
	Profile string `json:"profile,omitempty"`
}

// String renders the descriptor in the compact form used in logs and
// quarantine reasons, e.g. "fleet/4/stream/affinity/seed=7".
func (d PathDescriptor) String() string {
	s := d.Mode
	if d.Shards > 0 {
		s += "/" + strconv.Itoa(d.Shards)
	}
	s += "/" + d.Dispatch
	if d.Affinity {
		s += "/affinity"
	}
	if d.Seed != 0 {
		s += "/seed=" + strconv.FormatInt(d.Seed, 10)
	}
	if d.Profile != "" {
		s += "/profile=" + d.Profile
	}
	return s
}

// Attestation is the provenance record of one installed signature-set
// version: which input corpus it was compiled from, which two execution
// paths agreed on it, and the digest of the exact bytes consumers
// deploy. MAC, when present, is an HMAC-SHA256 over the rest of the
// record under the publisher's certification key, so a consumer holding
// the shared key can verify the record was issued by the publisher and
// not altered in transit or at rest.
type Attestation struct {
	// Version is the store version the attestation covers.
	Version int64 `json:"version"`
	// CorpusDigest fingerprints the compile input (samples + known
	// payloads, in their deterministic processing order).
	CorpusDigest string `json:"corpusDigest"`
	// SetDigest is the SHA-256 of the canonical serialized signature set
	// — the exact bytes Publish compares and consumers deploy.
	SetDigest string `json:"setDigest"`
	// Primary and Verify describe the two compile paths that agreed.
	Primary PathDescriptor `json:"primary"`
	Verify  PathDescriptor `json:"verify"`
	// Prev is the audit-log chain digest the attestation was appended
	// after ("" when the log was empty), pinning the whole log prefix.
	Prev string `json:"prev,omitempty"`
	// Time is the RFC 3339 issue time.
	Time string `json:"time,omitempty"`
	// MAC is the hex HMAC-SHA256 over the record (MAC cleared) under the
	// publisher's certification key; empty on unsigned stores.
	MAC string `json:"mac,omitempty"`
}

// signingBytes renders the attestation's canonical signed content: the
// JSON encoding with MAC cleared.
func (a Attestation) signingBytes() []byte {
	a.MAC = ""
	b, err := json.Marshal(a)
	if err != nil {
		// Attestation is a plain value struct; Marshal cannot fail on it.
		panic("sigdb: marshal attestation: " + err.Error())
	}
	return b
}

// Sign computes the attestation's hex HMAC-SHA256 under key.
func (a Attestation) Sign(key []byte) string {
	mac := hmac.New(sha256.New, key)
	mac.Write(a.signingBytes())
	return hex.EncodeToString(mac.Sum(nil))
}

// VerifyMAC reports whether the attestation carries a MAC that verifies
// under key. An empty MAC never verifies.
func (a Attestation) VerifyMAC(key []byte) bool {
	if a.MAC == "" {
		return false
	}
	got, err := hex.DecodeString(a.MAC)
	if err != nil {
		return false
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(a.signingBytes())
	return hmac.Equal(got, mac.Sum(nil))
}

// Quarantine records a certification failure: the two compile paths
// disagreed, nothing was installed, and both conflicting artifacts are
// embedded so operators can diff them and re-POST whichever (if either)
// turns out to be sound.
type Quarantine struct {
	// ServingVersion is the version that kept serving.
	ServingVersion int64 `json:"servingVersion"`
	// CorpusDigest fingerprints the disputed compile's input.
	CorpusDigest string `json:"corpusDigest"`
	// Primary / Verify describe the two disagreeing paths.
	Primary PathDescriptor `json:"primary"`
	Verify  PathDescriptor `json:"verify"`
	// PrimaryDigest / VerifyDigest are the two sets' content digests.
	PrimaryDigest string `json:"primaryDigest"`
	VerifyDigest  string `json:"verifyDigest"`
	// PrimarySet / VerifySet embed both serialized signature sets (JSON
	// arrays of signatures), so the conflicting artifacts are recoverable
	// from the audit log alone.
	PrimarySet json.RawMessage `json:"primarySet"`
	VerifySet  json.RawMessage `json:"verifySet"`
	// Reason is a human-readable summary.
	Reason string `json:"reason,omitempty"`
	// Time is the RFC 3339 record time.
	Time string `json:"time,omitempty"`
}

// Audit record kinds.
const (
	AuditAttest     = "attest"
	AuditQuarantine = "quarantine"
)

// AuditRecord is one entry of the append-only audit log. Records form a
// hash chain: Prev is the previous record's Sum ("" for the first) and
// Sum is the SHA-256 of the record itself with Sum cleared, so any
// mutation or reordering breaks every later link.
type AuditRecord struct {
	// Seq numbers records from 1.
	Seq int64 `json:"seq"`
	// Kind is AuditAttest or AuditQuarantine.
	Kind string `json:"kind"`
	// Exactly one of Attestation / Quarantine is set, matching Kind.
	Attestation *Attestation `json:"attestation,omitempty"`
	Quarantine  *Quarantine  `json:"quarantine,omitempty"`
	// Prev / Sum are the hash-chain links (hex SHA-256).
	Prev string `json:"prev,omitempty"`
	Sum  string `json:"sum"`
}

// chainSum computes the record's chain digest: SHA-256 over the JSON
// encoding with Sum cleared.
func (r AuditRecord) chainSum() string {
	r.Sum = ""
	b, err := json.Marshal(r)
	if err != nil {
		panic("sigdb: marshal audit record: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// checkChain verifies one record against its predecessor's chain digest.
func (r AuditRecord) checkChain(seq int64, prevSum string) error {
	if r.Seq != seq {
		return fmt.Errorf("sigdb: audit record seq %d, want %d", r.Seq, seq)
	}
	if r.Prev != prevSum {
		return fmt.Errorf("sigdb: audit record %d chains to %.12q, want %.12q", r.Seq, r.Prev, prevSum)
	}
	if r.chainSum() != r.Sum {
		return fmt.Errorf("sigdb: audit record %d digest mismatch", r.Seq)
	}
	switch r.Kind {
	case AuditAttest:
		if r.Attestation == nil {
			return fmt.Errorf("sigdb: audit record %d: attest record without attestation", r.Seq)
		}
	case AuditQuarantine:
		if r.Quarantine == nil {
			return fmt.Errorf("sigdb: audit record %d: quarantine record without quarantine", r.Seq)
		}
	default:
		return fmt.Errorf("sigdb: audit record %d: unknown kind %q", r.Seq, r.Kind)
	}
	return nil
}

// SetDigest computes the content digest of a signature set: SHA-256 hex
// over the canonical serialized update body — the exact bytes Publish
// compares against the live set and consumers deploy. Deterministic:
// the serialized forms contain no maps.
func SetDigest(sigs []kizzle.Signature, multi []kizzle.MultiSignature) (string, error) {
	b, err := json.Marshal(update{Signatures: sigs, Multi: multi})
	if err != nil {
		return "", fmt.Errorf("sigdb: digest signature set: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// SetDigest returns the snapshot's content digest (version-independent),
// the quantity an Attestation's SetDigest field is compared against.
func (s Snapshot) SetDigest() (string, error) { return SetDigest(s.Signatures, s.Multi) }

// SetCertKey installs the certification key used to HMAC-sign every
// attestation appended from now on. An empty key leaves attestations
// unsigned (strict clients configured with a key will reject them).
func (s *Store) SetCertKey(key []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.certKey = append([]byte(nil), key...)
}

// Attestation returns the attestation covering a version, if one exists.
func (s *Store) Attestation(version int64) (Attestation, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	att, ok := s.attests[version]
	return att, ok
}

// AuditRecords returns a copy of the audit log, oldest first.
func (s *Store) AuditRecords() []AuditRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]AuditRecord(nil), s.audit...)
}

// PublishAttested is the certified publish entry point: it behaves like
// Publish, and additionally appends a signed attestation to the audit
// log naming the input-corpus digest and the two compile paths whose
// bit-identical agreement the caller (cmd/sigserve's certifier)
// established. When the set is unchanged and the current version is
// already attested, the existing attestation is returned without a
// version bump or a new record; an unchanged set on a version that
// predates certification gets attested in place.
func (s *Store) PublishAttested(sigs []kizzle.Signature, multi []kizzle.MultiSignature, corpusDigest string, primary, verify PathDescriptor) (version int64, changed bool, att Attestation, err error) {
	next, err := json.Marshal(update{Signatures: sigs, Multi: multi})
	if err != nil {
		return 0, false, Attestation{}, fmt.Errorf("sigdb: marshal candidate: %w", err)
	}
	sum := sha256.Sum256(next)
	setDigest := hex.EncodeToString(sum[:])
	if err := validateFamilies(sigs, multi); err != nil {
		return 0, false, Attestation{}, err
	}
	candidate := Snapshot{
		Signatures: append([]kizzle.Signature(nil), sigs...),
		Multi:      append([]kizzle.MultiSignature(nil), multi...),
	}
	if _, _, err := candidate.Matcher(); err != nil {
		return 0, false, Attestation{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, err := json.Marshal(update{Signatures: s.snap.Signatures, Multi: s.snap.Multi})
	if err == nil && s.snap.Version > 0 && bytes.Equal(cur, next) {
		if att, ok := s.attests[s.snap.Version]; ok {
			return s.snap.Version, false, att, nil
		}
		att, err := s.attestLocked(s.snap.Version, corpusDigest, setDigest, primary, verify)
		return s.snap.Version, false, att, err
	}
	version, err = s.installLocked(candidate)
	if err != nil {
		return 0, false, Attestation{}, err
	}
	att, err = s.attestLocked(version, corpusDigest, setDigest, primary, verify)
	return version, true, att, err
}

// attestLocked builds, signs, and appends one attestation. Caller holds
// s.mu.
func (s *Store) attestLocked(version int64, corpusDigest, setDigest string, primary, verify PathDescriptor) (Attestation, error) {
	att := Attestation{
		Version:      version,
		CorpusDigest: corpusDigest,
		SetDigest:    setDigest,
		Primary:      primary,
		Verify:       verify,
		Prev:         s.lastAuditSumLocked(),
		Time:         time.Now().UTC().Format(time.RFC3339),
	}
	if len(s.certKey) > 0 {
		att.MAC = att.Sign(s.certKey)
	}
	if err := s.appendAuditLocked(AuditRecord{Kind: AuditAttest, Attestation: &att}); err != nil {
		return Attestation{}, err
	}
	if s.attests == nil {
		s.attests = make(map[int64]Attestation)
	}
	s.attests[version] = att
	return att, nil
}

// RecordQuarantine appends a quarantine record: the disputed publish was
// NOT installed, the serving version is unchanged, and both conflicting
// artifacts ride in the record for recovery.
func (s *Store) RecordQuarantine(q Quarantine) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	q.ServingVersion = s.snap.Version
	if q.Time == "" {
		q.Time = time.Now().UTC().Format(time.RFC3339)
	}
	return s.appendAuditLocked(AuditRecord{Kind: AuditQuarantine, Quarantine: &q})
}

// lastAuditSumLocked returns the chain digest of the newest audit record
// ("" on an empty log). Caller holds s.mu (read or write).
func (s *Store) lastAuditSumLocked() string {
	if len(s.audit) == 0 {
		return ""
	}
	return s.audit[len(s.audit)-1].Sum
}

// appendAuditLocked links one record into the chain, appends it to the
// in-memory log, and (file-backed stores) appends its JSONL line to
// <store>.audit. Caller holds s.mu.
func (s *Store) appendAuditLocked(rec AuditRecord) error {
	rec.Seq = int64(len(s.audit)) + 1
	rec.Prev = s.lastAuditSumLocked()
	rec.Sum = rec.chainSum()
	if path := s.auditPath(); path != "" {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("sigdb: marshal audit record: %w", err)
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("sigdb: open audit log: %w", err)
		}
		_, werr := f.Write(append(line, '\n'))
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("sigdb: append audit log: %w", werr)
		}
		if cerr != nil {
			return fmt.Errorf("sigdb: close audit log: %w", cerr)
		}
	}
	s.audit = append(s.audit, rec)
	return nil
}

// auditPath derives the audit-log path from the store path ("" for
// in-memory stores, whose log lives in memory only).
func (s *Store) auditPath() string {
	if s.path == "" {
		return ""
	}
	return s.path + ".audit"
}

// loadAudit restores the audit log from disk, recovering from a corrupt
// or tampered tail by keeping the longest valid chained prefix and
// rewriting the file to exactly that prefix. The log is provenance, not
// serving state, so a damaged log degrades to less history — it never
// fails Open and never touches the signature snapshot. Returns the
// number of trailing records (or line fragments) dropped.
func (s *Store) loadAudit() int {
	path := s.auditPath()
	if path == "" {
		return 0
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	var valid []AuditRecord
	var validLen int // byte length of the valid prefix
	prevSum := ""
	dropped := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), maxUpdateBytes)
	offset := 0
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := len(line) + 1 // + newline
		var rec AuditRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			dropped++
			break
		}
		if err := rec.checkChain(int64(len(valid))+1, prevSum); err != nil {
			dropped++
			break
		}
		valid = append(valid, rec)
		prevSum = rec.Sum
		offset += lineLen
		validLen = offset
	}
	// Anything past the valid prefix — a corrupt record, a broken chain
	// link, or a truncated last line — is dropped from the file too, so
	// the next append extends a clean chain.
	if validLen < len(data) {
		if rest := data[validLen:]; len(bytes.TrimSpace(rest)) > 0 && dropped == 0 {
			dropped++ // truncated trailing fragment the scanner absorbed
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, data[:validLen], 0o644); err == nil {
			os.Rename(tmp, path)
		}
	}
	s.audit = valid
	for _, rec := range valid {
		if rec.Kind == AuditAttest && rec.Attestation != nil {
			if s.attests == nil {
				s.attests = make(map[int64]Attestation)
			}
			s.attests[rec.Attestation.Version] = *rec.Attestation
		}
	}
	return dropped
}

// AttestHandler serves attestations over HTTP:
//
//	GET <path>?version=N   attestation for version N (default: current)
//	GET <path>?audit=1     the full audit log, oldest first
//
// Consumers (sigdb.Client in strict mode, operators with curl) use it to
// verify the provenance of the exact bytes they are scanning with; an
// unattested version answers 404, which a strict client treats as a
// rejection.
func (s *Store) AttestHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if r.URL.Query().Get("audit") == "1" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(s.AuditRecords())
			return
		}
		version := s.Version()
		if q := r.URL.Query().Get("version"); q != "" {
			v, err := strconv.ParseInt(q, 10, 64)
			if err != nil {
				http.Error(w, "bad version parameter", http.StatusBadRequest)
				return
			}
			version = v
		}
		att, ok := s.Attestation(version)
		if !ok {
			http.Error(w, fmt.Sprintf("no attestation for version %d", version), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(att)
	})
}
