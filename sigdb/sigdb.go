package sigdb

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	"kizzle"
)

// validateFamilies rejects candidate sets whose family names are
// ambiguous under workload namespacing: a bare family name ("strato_v2")
// and a namespaced one with the same basename ("webkit/strato_v2") must
// not coexist in one published set — consumers keying thresholds,
// metrics, or match reports by basename could not tell which workload a
// hit belongs to. Distinct namespaces sharing a basename are fine.
func validateFamilies(sigs []kizzle.Signature, multi []kizzle.MultiSignature) error {
	bare := make(map[string]bool)
	namespaced := make(map[string]string) // basename -> first namespaced name
	record := func(fam string) {
		if i := strings.IndexByte(fam, '/'); i >= 0 {
			base := fam[i+1:]
			if _, ok := namespaced[base]; !ok {
				namespaced[base] = fam
			}
		} else {
			bare[fam] = true
		}
	}
	for _, s := range sigs {
		record(s.Family())
	}
	for _, m := range multi {
		record(m.Family())
	}
	for base, full := range namespaced {
		if bare[base] {
			return fmt.Errorf("sigdb: ambiguous family names: bare %q collides with namespaced %q — namespace both or neither", base, full)
		}
	}
	return nil
}

// Snapshot is one immutable version of the signature set.
type Snapshot struct {
	// Version increases monotonically with every Replace.
	Version int64 `json:"version"`
	// Signatures are the deployed single-run signatures.
	Signatures []kizzle.Signature `json:"signatures"`
	// Multi are the deployed multi-sequence signatures.
	Multi []kizzle.MultiSignature `json:"multi,omitempty"`
}

// Matcher compiles the snapshot for scanning.
func (s Snapshot) Matcher() (*kizzle.Matcher, *kizzle.MultiMatcher, error) {
	m, err := kizzle.NewMatcher(s.Signatures)
	if err != nil {
		return nil, nil, fmt.Errorf("sigdb: compile snapshot v%d: %w", s.Version, err)
	}
	mm, err := kizzle.NewMultiMatcher(s.Multi)
	if err != nil {
		return nil, nil, fmt.Errorf("sigdb: compile snapshot v%d: %w", s.Version, err)
	}
	return m, mm, nil
}

// Store holds the current signature set. The zero value is unusable; use
// Open (file-backed) or New (in-memory).
type Store struct {
	mu   sync.RWMutex
	path string
	snap Snapshot
	// history holds family digests for the last deltaHistory versions,
	// the server side of the delta distribution channel (see delta.go).
	history map[int64]map[string]uint64
	// certKey signs attestations (see attest.go); empty = unsigned.
	certKey []byte
	// attests indexes attestations by covered version; audit is the
	// append-only hash-chained log both attestations and quarantines land
	// in, persisted as JSONL at path+".audit" for file-backed stores.
	attests map[int64]Attestation
	audit   []AuditRecord
	// watch is closed (and replaced) on every version change: the
	// broadcast the long-poll watch endpoint blocks on, so a publish
	// reaches every parked replica in one RTT instead of a poll interval.
	watch chan struct{}
}

// versionWatch returns a channel that is closed at the next version
// change. Subscribe before reading the version you compare against, or a
// publish landing between the read and the subscription is missed.
func (s *Store) versionWatch() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.watch == nil {
		s.watch = make(chan struct{})
	}
	return s.watch
}

// New creates an in-memory store at version 0.
func New() *Store { return &Store{} }

// Open loads a file-backed store; a missing file starts empty at version 0
// and is created on the first Replace.
func Open(path string) (*Store, error) {
	s := &Store{path: path}
	// Restore the audit trail first (tolerant of corruption — see
	// loadAudit); provenance survives even when the snapshot file is gone.
	s.loadAudit()
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sigdb: open: %w", err)
	}
	if err := json.Unmarshal(data, &s.snap); err != nil {
		return nil, fmt.Errorf("sigdb: parse %s: %w", path, err)
	}
	// Validate by compiling once; a corrupt store must not deploy.
	if _, _, err := s.snap.Matcher(); err != nil {
		return nil, err
	}
	// Seed digest history so replicas already at this version get deltas
	// for the next Replace.
	s.recordHistoryLocked()
	return s, nil
}

// Version returns the current version.
func (s *Store) Version() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap.Version
}

// Snapshot returns the current signature set.
func (s *Store) Snapshot() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Snapshot{
		Version:    s.snap.Version,
		Signatures: append([]kizzle.Signature(nil), s.snap.Signatures...),
		Multi:      append([]kizzle.MultiSignature(nil), s.snap.Multi...),
	}
}

// Publish installs a new signature set only if it differs from the
// currently published one (compared in serialized form — the exact bytes
// consumers deploy). An unchanged set returns the current version with
// changed=false and no version bump, so steady-state recompilation loops
// do not force every poller to re-fetch, re-validate, and recompile an
// identical set. A changed set goes through Replace (compile-validated,
// atomically persisted).
func (s *Store) Publish(sigs []kizzle.Signature, multi []kizzle.MultiSignature) (version int64, changed bool, err error) {
	next, err := json.Marshal(update{Signatures: sigs, Multi: multi})
	if err != nil {
		return 0, false, fmt.Errorf("sigdb: marshal candidate: %w", err)
	}
	if err := validateFamilies(sigs, multi); err != nil {
		return 0, false, err
	}
	candidate := Snapshot{
		Signatures: append([]kizzle.Signature(nil), sigs...),
		Multi:      append([]kizzle.MultiSignature(nil), multi...),
	}
	if _, _, err := candidate.Matcher(); err != nil {
		return 0, false, err
	}
	// Compare and install under one write lock: a concurrent Replace
	// between a racy check and install could otherwise make the
	// unchanged-set decision stale (skipping a publish the live set no
	// longer matches) or double-bump on two identical publishes.
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, err := json.Marshal(update{Signatures: s.snap.Signatures, Multi: s.snap.Multi})
	if err == nil && s.snap.Version > 0 && bytes.Equal(cur, next) {
		return s.snap.Version, false, nil
	}
	version, err = s.installLocked(candidate)
	return version, err == nil, err
}

// Replace installs a new signature set, bumps the version, and (for
// file-backed stores) persists atomically via rename. The new set is
// compiled first: invalid signatures never reach the store.
func (s *Store) Replace(sigs []kizzle.Signature, multi []kizzle.MultiSignature) (int64, error) {
	if err := validateFamilies(sigs, multi); err != nil {
		return 0, err
	}
	candidate := Snapshot{
		Signatures: append([]kizzle.Signature(nil), sigs...),
		Multi:      append([]kizzle.MultiSignature(nil), multi...),
	}
	if _, _, err := candidate.Matcher(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.installLocked(candidate)
}

// installLocked bumps the version, persists file-backed stores atomically
// via rename, and swaps in the candidate. Caller holds s.mu.
func (s *Store) installLocked(candidate Snapshot) (int64, error) {
	candidate.Version = s.snap.Version + 1
	if s.path != "" {
		data, err := json.MarshalIndent(candidate, "", "  ")
		if err != nil {
			return 0, fmt.Errorf("sigdb: marshal: %w", err)
		}
		tmp := s.path + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return 0, fmt.Errorf("sigdb: write: %w", err)
		}
		if err := os.Rename(tmp, s.path); err != nil {
			return 0, fmt.Errorf("sigdb: rename: %w", err)
		}
	}
	s.snap = candidate
	s.recordHistoryLocked()
	if s.watch != nil {
		// Wake every parked watcher; the next subscriber gets a fresh
		// channel.
		close(s.watch)
		s.watch = nil
	}
	return candidate.Version, nil
}
