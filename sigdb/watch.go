package sigdb

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// defaultWatchWait bounds how long one watch request parks server-side
// before answering 304. Under common LB/proxy idle timeouts (60s), so a
// parked request completes before an intermediary kills it; clients
// reconnect immediately on the tick, so the stream is effectively
// continuous.
const defaultWatchWait = 55 * time.Second

// ErrWatchUnsupported reports that the server has no watch endpoint
// (404/405/501); Run falls back to jittered conditional polling for the
// client's lifetime.
var ErrWatchUnsupported = errors.New("sigdb: server does not support watch")

// WatchHandler serves the server-push side of the distribution channel:
//
//	GET <path>?since=<version>[&delta=1]
//
// A request whose since is behind the store answers immediately with the
// same body the poll endpoint would serve (full snapshot, or per-family
// delta when asked for and smaller). A current request parks until the
// next publish — completing the moment a newer version installs, so a
// version change reaches every parked replica in ~1 RTT instead of a
// poll interval — or until the wait bound elapses, which answers 304 and
// lets the client reconnect (long-poll heartbeat). Closed client
// connections release their parked goroutine via the request context.
func (s *Store) WatchHandler() http.Handler { return s.watchHandler(defaultWatchWait) }

// watchHandler is WatchHandler with the park bound injectable (tests use
// short waits to pin the 304 heartbeat).
func (s *Store) watchHandler(maxWait time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		since := int64(-1)
		if q := r.URL.Query().Get("since"); q != "" {
			v, err := strconv.ParseInt(q, 10, 64)
			if err != nil {
				http.Error(w, "bad since parameter", http.StatusBadRequest)
				return
			}
			since = v
		}
		deadline := time.NewTimer(maxWait)
		defer deadline.Stop()
		for {
			// Subscribe before reading the version: a publish landing
			// between the two closes the channel we are about to park on,
			// so it can never be missed.
			changed := s.versionWatch()
			snap, delta := s.snapshotAndDelta(since)
			if snap.Version > since {
				w.Header().Set("ETag", versionETag(snap.Version))
				writeSetResponse(w, r, snap, delta)
				return
			}
			select {
			case <-changed:
			case <-r.Context().Done():
				return
			case <-deadline.C:
				w.Header().Set("ETag", versionETag(snap.Version))
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	})
}

// watchFetch performs one long-poll round against the watch endpoint and
// runs any returned update through the same deploy gates as Fetch.
// (Snapshot, true) means an update deployed; (zero, false, nil) is the
// server's heartbeat tick (304 after the park bound) — reconnect
// immediately. ErrWatchUnsupported (wrapped) reports a server without
// the endpoint.
func (c *Client) watchFetch(ctx context.Context) (Snapshot, bool, error) {
	base := c.WatchURL
	if base == "" {
		base = c.URL + "/watch"
	}
	snap, etag, ok, err := c.fetchFrom(ctx, base, c.last.Version > 0, false)
	if err != nil {
		var se *statusError
		if errors.As(err, &se) {
			switch se.code {
			case http.StatusNotFound, http.StatusMethodNotAllowed, http.StatusNotImplemented:
				return Snapshot{}, false, ErrWatchUnsupported
			}
		}
		return Snapshot{}, false, err
	}
	if !ok {
		c.watchTicks.Add(1)
		return Snapshot{}, false, nil
	}
	snap, updated, err := c.advance(ctx, snap, etag)
	if updated {
		c.watchUpdates.Add(1)
	}
	return snap, updated, err
}

// watchBackoffCeiling caps the retry backoff after watch stream drops.
const watchBackoffCeiling = 15 * time.Second

// defaultWatchMinRound is the pacing floor for no-update watch rounds: a
// healthy round either delivers an update or parks server-side for tens
// of seconds, so one finishing this fast without news means something in
// the path (an eager intermediary, a non-store implementation) is
// answering immediately — and with no floor, every replica would spin
// the full fleet's request rate against it.
const defaultWatchMinRound = time.Second

// watchMinRound resolves the client's pacing floor (see WatchMinRound).
func (c *Client) watchMinRound() time.Duration {
	if c.WatchMinRound != 0 {
		return c.WatchMinRound
	}
	return defaultWatchMinRound
}

// Run keeps the client current until ctx cancels, preferring server push
// with polling as the safety net. It long-polls the watch endpoint —
// each update deploys through the same validation/strict gates as Fetch,
// and each completed round reconnects immediately (a round that answers
// suspiciously fast without an update is paced to WatchMinRound, so an
// eager 304-answering intermediary cannot turn the fleet into a busy
// loop) — and degrades gracefully when push is unavailable: a server
// without the endpoint drops Run to Poll (jittered conditional polling
// at interval) for good, and a dropped stream retries with capped,
// jittered exponential backoff while a conditional poll per failed round
// keeps updates flowing at poll cadence in the meantime. Like
// Fetch/Poll, Run must be the only goroutine driving this client.
func (c *Client) Run(ctx context.Context, interval time.Duration, apply func(Snapshot), onError func(error)) {
	backoff := time.Duration(0)
	for ctx.Err() == nil {
		start := time.Now()
		snap, updated, err := c.watchFetch(ctx)
		if err == nil {
			backoff = 0
			if updated {
				apply(snap)
			} else if elapsed := time.Since(start); elapsed < c.watchMinRound() {
				// An empty round should have parked server-side for ~the
				// wait bound; one returning immediately means the endpoint
				// is answering eagerly. Sleep out the floor (jittered, so
				// paced replicas de-synchronize) instead of hammering it.
				c.watchPaced.Add(1)
				if !sleepCtx(ctx, c.jitteredInterval(c.watchMinRound()-elapsed)) {
					return
				}
			}
			continue
		}
		if ctx.Err() != nil {
			return
		}
		if errors.Is(err, ErrWatchUnsupported) {
			c.watchFallback.Add(1)
			if onError != nil {
				onError(err)
			}
			c.Poll(ctx, interval, apply, onError)
			return
		}
		c.watchDrops.Add(1)
		if onError != nil {
			onError(err)
		}
		// The watch stream dropped (or its update failed a gate). Fall
		// back to one conditional poll so a pending update still lands,
		// then back off before re-arming the stream — a crashed server
		// must not be hammered by the whole fleet reconnecting in a tight
		// loop.
		if snap, updated, ferr := c.Fetch(ctx); ferr == nil && updated {
			apply(snap)
		}
		if backoff == 0 {
			backoff = 250 * time.Millisecond
		} else if backoff *= 2; backoff > watchBackoffCeiling {
			backoff = watchBackoffCeiling
		}
		if !sleepCtx(ctx, c.jitteredInterval(backoff)) {
			return
		}
	}
}

// sleepCtx sleeps for d or until ctx cancels; it reports false on
// cancellation.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
