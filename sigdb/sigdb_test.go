package sigdb

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"kizzle"
	"kizzle/synth"
)

// trainSignatures produces a real signature set from the synthetic stream.
func trainSignatures(t *testing.T, day int) []kizzle.Signature {
	t.Helper()
	c := kizzle.New(kizzle.WithSignatureSlack(2))
	for _, fam := range synth.Kits() {
		c.AddKnown(fam.String(), synth.Payload(fam, day-1))
	}
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 40
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var batch []kizzle.Sample
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
	}
	res, err := c.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Signatures) == 0 {
		t.Fatal("no signatures trained")
	}
	return res.Signatures
}

func TestStoreReplaceBumpsVersion(t *testing.T) {
	day := synth.Date(time.August, 5)
	s := New()
	if s.Version() != 0 {
		t.Fatalf("fresh store version = %d", s.Version())
	}
	sigs := trainSignatures(t, day)
	v, err := s.Replace(sigs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || s.Version() != 1 {
		t.Errorf("version = %d/%d, want 1", v, s.Version())
	}
	if _, err := s.Replace(sigs, nil); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 2 {
		t.Errorf("version = %d, want 2", s.Version())
	}
	snap := s.Snapshot()
	if len(snap.Signatures) != len(sigs) {
		t.Errorf("snapshot has %d signatures, want %d", len(snap.Signatures), len(sigs))
	}
}

// TestStorePublishSkipsUnchanged pins the delta-publish contract sigserve's
// recompilation loop relies on: republishing an identical set does not bump
// the version (so pollers stay on 304 and matcher caches stay warm), while
// any real change — including dropping back to a previous set — does.
func TestStorePublishSkipsUnchanged(t *testing.T) {
	day := synth.Date(time.August, 5)
	s := New()
	sigs := trainSignatures(t, day)

	v, changed, err := s.Publish(sigs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || !changed {
		t.Fatalf("first publish = (v%d, changed=%v), want (v1, true)", v, changed)
	}
	v, changed, err = s.Publish(sigs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || changed {
		t.Fatalf("identical republish = (v%d, changed=%v), want (v1, false)", v, changed)
	}
	// A genuinely different set (drop one signature) must bump.
	v, changed, err = s.Publish(sigs[1:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || !changed {
		t.Fatalf("changed publish = (v%d, changed=%v), want (v2, true)", v, changed)
	}
	// Publishing the original set again is also a change relative to v2.
	v, changed, err = s.Publish(sigs, nil)
	if err != nil || v != 3 || !changed {
		t.Fatalf("revert publish = (v%d, changed=%v, err=%v), want (v3, true, nil)", v, changed, err)
	}
	// A first publish on an empty store always establishes v1, even when
	// the candidate set is empty like the store's zero state.
	empty := New()
	v, changed, err = empty.Publish(nil, nil)
	if err != nil || v != 1 || !changed {
		t.Fatalf("empty first publish = (v%d, changed=%v, err=%v), want (v1, true, nil)", v, changed, err)
	}
}

func TestStoreRejectsInvalid(t *testing.T) {
	s := New()
	var bad kizzle.Signature
	if _, err := s.Replace([]kizzle.Signature{bad}, nil); err == nil {
		t.Error("invalid signature must be rejected")
	}
	if s.Version() != 0 {
		t.Error("failed replace must not bump the version")
	}
}

func TestStorePersistence(t *testing.T) {
	day := synth.Date(time.August, 5)
	path := filepath.Join(t.TempDir(), "sigs.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sigs := trainSignatures(t, day)
	if _, err := s.Replace(sigs, nil); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Version() != 1 {
		t.Errorf("reopened version = %d, want 1", reopened.Version())
	}
	snap := reopened.Snapshot()
	m, _, err := snap.Matcher()
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded matcher must behave like the original.
	orig, err := kizzle.NewMatcher(sigs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 10
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range stream.Day(day + 1) {
		if m.Detects(smp.Content) != orig.Detects(smp.Content) {
			t.Fatalf("reloaded matcher disagrees on %s", smp.ID)
		}
	}
}

func TestOpenMissingFileStartsEmpty(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Version() != 0 {
		t.Errorf("version = %d", s.Version())
	}
}

func TestOpenCorruptFileFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("corrupt store must fail to open")
	}
}

func TestHTTPDistribution(t *testing.T) {
	day := synth.Date(time.August, 5)
	store := New()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()
	client := &Client{URL: srv.URL}
	ctx := context.Background()

	// Nothing published yet: the client at version 0 is current.
	if _, updated, err := client.Fetch(ctx); err != nil || updated {
		t.Fatalf("fetch on empty store: updated=%v err=%v", updated, err)
	}

	sigs := trainSignatures(t, day)
	if _, err := store.Replace(sigs, nil); err != nil {
		t.Fatal(err)
	}
	snap, updated, err := client.Fetch(ctx)
	if err != nil || !updated {
		t.Fatalf("fetch after publish: updated=%v err=%v", updated, err)
	}
	if snap.Version != 1 || len(snap.Signatures) != len(sigs) {
		t.Errorf("snapshot v%d with %d signatures", snap.Version, len(snap.Signatures))
	}
	// Now current again.
	if _, updated, err := client.Fetch(ctx); err != nil || updated {
		t.Fatalf("second fetch: updated=%v err=%v", updated, err)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	store := New()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "?since=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad since: status %d", resp.StatusCode)
	}
	post, err := srv.Client().Post(srv.URL, "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 400 {
		t.Errorf("malformed POST: status %d", post.StatusCode)
	}
	del, err := http.NewRequest(http.MethodDelete, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = srv.Client().Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("DELETE: status %d", resp.StatusCode)
	}
}

// TestHTTPPostUpdate round-trips a signature set through the push side of
// the distribution channel: POST replaces the published set, bumps the
// version, and pollers pick the new set up.
func TestHTTPPostUpdate(t *testing.T) {
	day := synth.Date(time.August, 5)
	store := New()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	sigs := trainSignatures(t, day)
	body, err := json.Marshal(map[string]any{"signatures": sigs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST: status %d", resp.StatusCode)
	}
	var v struct {
		Version int64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Version != 1 || store.Version() != 1 {
		t.Fatalf("POST version = %d (store %d), want 1", v.Version, store.Version())
	}
	snap := store.Snapshot()
	if len(snap.Signatures) != len(sigs) {
		t.Fatalf("published %d signatures, want %d", len(snap.Signatures), len(sigs))
	}

	// An invalid set must be rejected without touching the store.
	bad, err := srv.Client().Post(srv.URL, "application/json",
		strings.NewReader(`{"signatures": [{"family":"X","elements":[{"kind":2,"group":0}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != 422 {
		t.Errorf("invalid set: status %d, want 422", bad.StatusCode)
	}
	if store.Version() != 1 {
		t.Errorf("invalid set bumped version to %d", store.Version())
	}
}

func TestPollAppliesUpdatesAndStops(t *testing.T) {
	day := synth.Date(time.August, 5)
	store := New()
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	sigs := trainSignatures(t, day)
	if _, err := store.Replace(sigs, nil); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got []int64
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	client := &Client{URL: srv.URL}
	go func() {
		defer close(done)
		client.Poll(ctx, 5*time.Millisecond, func(s Snapshot) {
			mu.Lock()
			got = append(got, s.Version)
			mu.Unlock()
		}, nil)
	}()

	// Wait for the first application, publish again, wait for the second.
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("poller never applied the first update")
		case <-time.After(time.Millisecond):
		}
	}
	if _, err := store.Replace(sigs, nil); err != nil {
		t.Fatal(err)
	}
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("poller never applied the second update")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("poller did not stop on cancel")
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("applied versions %v, want [1 2 ...]", got)
	}
}

func TestPollSurvivesServerErrors(t *testing.T) {
	// Point the client at a dead server: Poll must keep running and
	// reporting errors until cancelled.
	client := &Client{URL: "http://127.0.0.1:1/nothing"}
	ctx, cancel := context.WithCancel(context.Background())
	errs := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		client.Poll(ctx, time.Millisecond, func(Snapshot) {
			t.Error("no update possible from dead server")
		}, func(error) { errs++ })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	<-done
	if errs == 0 {
		t.Error("expected transient errors to be reported")
	}
}
