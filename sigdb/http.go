package sigdb

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler serves the store over HTTP:
//
//	GET <path>?since=<version>
//
// responds 304 when the client is current, otherwise 200 with the full
// Snapshot as JSON. Full snapshots (rather than deltas) keep consumers
// correct through any missed update.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		since := int64(-1)
		if q := r.URL.Query().Get("since"); q != "" {
			v, err := strconv.ParseInt(q, 10, 64)
			if err != nil {
				http.Error(w, "bad since parameter", http.StatusBadRequest)
				return
			}
			since = v
		}
		snap := s.Snapshot()
		if since >= snap.Version {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(snap); err != nil {
			// Headers already sent; nothing more to do.
			return
		}
	})
}

// Client polls a signature server and applies updates.
type Client struct {
	// URL is the update endpoint (the path Handler is mounted at).
	URL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client

	version int64
}

// Fetch asks the server for anything newer than the client's last applied
// version. It returns (snapshot, true) on an update and (zero, false) when
// already current.
func (c *Client) Fetch(ctx context.Context) (Snapshot, bool, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s?since=%d", c.URL, c.version), nil)
	if err != nil {
		return Snapshot{}, false, fmt.Errorf("sigdb: build request: %w", err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return Snapshot{}, false, fmt.Errorf("sigdb: fetch: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return Snapshot{}, false, nil
	case http.StatusOK:
	default:
		return Snapshot{}, false, fmt.Errorf("sigdb: server returned %s", resp.Status)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return Snapshot{}, false, fmt.Errorf("sigdb: decode update: %w", err)
	}
	// Never deploy an update that does not compile.
	if _, _, err := snap.Matcher(); err != nil {
		return Snapshot{}, false, err
	}
	c.version = snap.Version
	return snap, true, nil
}

// Poll fetches on the given interval and hands each new snapshot to apply,
// until ctx is cancelled. Transient fetch errors are reported to onError
// (which may be nil) and polling continues — one failed request must not
// kill the update loop.
func (c *Client) Poll(ctx context.Context, interval time.Duration, apply func(Snapshot), onError func(error)) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		snap, updated, err := c.Fetch(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if onError != nil {
				onError(err)
			}
		} else if updated {
			apply(snap)
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
