package sigdb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"kizzle"
)

// maxUpdateBytes caps one POSTed signature set (4 MiB holds thousands of
// signatures; Figure 12 sizes run to ~2 KB each).
const maxUpdateBytes = 4 << 20

// Handler serves the store over HTTP:
//
//	GET  <path>?since=<version>
//	POST <path>
//
// GET responds 304 when the client is current, otherwise 200 with the full
// Snapshot as JSON. Full snapshots (rather than deltas) keep consumers
// correct through any missed update. POST replaces the published set with
// the {"signatures": [...], "multi": [...]} body — the push side of the
// distribution channel, used by compiler pipelines that publish signatures
// the moment a day's batch finishes — and responds with the new version.
// Invalid signature sets are rejected before they can reach any consumer.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
		case http.MethodPost:
			s.handleUpdate(w, r)
			return
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		since := int64(-1)
		if q := r.URL.Query().Get("since"); q != "" {
			v, err := strconv.ParseInt(q, 10, 64)
			if err != nil {
				http.Error(w, "bad since parameter", http.StatusBadRequest)
				return
			}
			since = v
		}
		snap := s.Snapshot()
		if since >= snap.Version {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(snap); err != nil {
			// Headers already sent; nothing more to do.
			return
		}
	})
}

// update is the POST body: a signature set without version (the store
// assigns the next version on Replace).
type update struct {
	Signatures []kizzle.Signature      `json:"signatures"`
	Multi      []kizzle.MultiSignature `json:"multi,omitempty"`
}

func (s *Store) handleUpdate(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxUpdateBytes)
	var u update
	if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, "bad update: "+err.Error(), status)
		return
	}
	version, err := s.Replace(u.Signatures, u.Multi)
	if err != nil {
		// Replace validates by compiling; a bad set never deploys.
		http.Error(w, "rejected: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"version\":%d}\n", version)
}

// Client polls a signature server and applies updates.
type Client struct {
	// URL is the update endpoint (the path Handler is mounted at).
	URL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client

	version int64
}

// Fetch asks the server for anything newer than the client's last applied
// version. It returns (snapshot, true) on an update and (zero, false) when
// already current.
func (c *Client) Fetch(ctx context.Context) (Snapshot, bool, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s?since=%d", c.URL, c.version), nil)
	if err != nil {
		return Snapshot{}, false, fmt.Errorf("sigdb: build request: %w", err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return Snapshot{}, false, fmt.Errorf("sigdb: fetch: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return Snapshot{}, false, nil
	case http.StatusOK:
	default:
		return Snapshot{}, false, fmt.Errorf("sigdb: server returned %s", resp.Status)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return Snapshot{}, false, fmt.Errorf("sigdb: decode update: %w", err)
	}
	// Never deploy an update that does not compile.
	if _, _, err := snap.Matcher(); err != nil {
		return Snapshot{}, false, err
	}
	c.version = snap.Version
	return snap, true, nil
}

// Poll fetches on the given interval and hands each new snapshot to apply,
// until ctx is cancelled. Transient fetch errors are reported to onError
// (which may be nil) and polling continues — one failed request must not
// kill the update loop.
func (c *Client) Poll(ctx context.Context, interval time.Duration, apply func(Snapshot), onError func(error)) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		snap, updated, err := c.Fetch(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if onError != nil {
				onError(err)
			}
		} else if updated {
			apply(snap)
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
