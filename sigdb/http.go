package sigdb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"kizzle"
)

// maxUpdateBytes caps one POSTed signature set (4 MiB holds thousands of
// signatures; Figure 12 sizes run to ~2 KB each).
const maxUpdateBytes = 4 << 20

// Handler serves the store over HTTP:
//
//	GET  <path>?since=<version>[&delta=1]
//	POST <path>
//
// GET responds 304 when the client is current — judged by the since
// parameter or by If-None-Match against the versioned ETag every response
// carries — otherwise 200 with the signature set as JSON. By default that
// is the full Snapshot, which keeps consumers correct through any missed
// update. With delta=1 a client that holds version since may instead
// receive a Delta carrying only the families that changed (marked by a
// "delta" key in the body); the server picks whichever encoding is
// smaller and falls back to the full snapshot whenever its bounded digest
// history cannot prove what the client holds. POST replaces the published
// set with the {"signatures": [...], "multi": [...]} body — the push side
// of the distribution channel, used by compiler pipelines that publish
// signatures the moment a day's batch finishes — and responds with the
// new version. Invalid signature sets are rejected before they can reach
// any consumer.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
		case http.MethodPost:
			s.handleUpdate(w, r)
			return
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		since := int64(-1)
		if q := r.URL.Query().Get("since"); q != "" {
			v, err := strconv.ParseInt(q, 10, 64)
			if err != nil {
				http.Error(w, "bad since parameter", http.StatusBadRequest)
				return
			}
			since = v
		}
		snap, delta := s.snapshotAndDelta(since)
		etag := versionETag(snap.Version)
		w.Header().Set("ETag", etag)
		if since >= snap.Version || r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		writeSetResponse(w, r, snap, delta)
	})
}

// writeSetResponse writes one 200 signature-set response: the full
// snapshot, or (when the client asked with delta=1 and it is smaller)
// the per-family delta. Shared by the conditional GET handler and the
// long-poll watch handler so both speak the identical wire format.
func writeSetResponse(w http.ResponseWriter, r *http.Request, snap Snapshot, delta *Delta) {
	full, err := json.Marshal(snap)
	if err != nil {
		http.Error(w, "encode snapshot: "+err.Error(), http.StatusInternalServerError)
		return
	}
	body := full
	if delta != nil && r.URL.Query().Get("delta") == "1" {
		if db, err := json.Marshal(delta); err == nil && len(db) < len(full) {
			body = db
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// versionETag renders a store version as the strong ETag GET responses
// carry.
func versionETag(version int64) string { return fmt.Sprintf("%q", fmt.Sprintf("v%d", version)) }

// update is the POST body: a signature set without version (the store
// assigns the next version on Replace).
type update struct {
	Signatures []kizzle.Signature      `json:"signatures"`
	Multi      []kizzle.MultiSignature `json:"multi,omitempty"`
}

func (s *Store) handleUpdate(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxUpdateBytes)
	var u update
	if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, "bad update: "+err.Error(), status)
		return
	}
	version, err := s.Replace(u.Signatures, u.Multi)
	if err != nil {
		// Replace validates by compiling; a bad set never deploys.
		http.Error(w, "rejected: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"version\":%d}\n", version)
}

// Client polls a signature server and applies updates. It asks for
// per-family deltas once it holds a snapshot (reconstructing and
// validating the full set locally), sends If-None-Match so unchanged
// polls cost a 304 and no body, and compiles what it fetches through an
// incremental per-family cache so a one-family delta recompiles one
// family. Run prefers the server-push watch endpoint over polling (see
// watch.go). Fetch/Poll/Run must run from one goroutine; Metrics and
// Matcher are safe to call from others.
type Client struct {
	// URL is the update endpoint (the path Handler is mounted at).
	URL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Jitter spreads every poll interval uniformly by ±Jitter fraction
	// (0.1 = ±10%), so a fleet of replicas started together does not
	// stampede the signature server on one synchronized tick. Zero means
	// fixed intervals.
	Jitter float64
	// JitterSeed seeds this client's private jitter source. Zero draws a
	// unique seed per client (replicas still de-synchronize), a non-zero
	// seed makes the jitter sequence deterministic — fleet tests pin it so
	// schedules reproduce. The client never touches the process-global
	// math/rand state.
	JitterSeed int64
	// WatchURL is the server-push endpoint Run long-polls (the path
	// WatchHandler is mounted at). Empty derives URL + "/watch", matching
	// sigserve's mount.
	WatchURL string
	// WatchMinRound floors one no-update watch round: Run treats a round
	// that completes faster than this without delivering an update (an
	// intermediary answering 304 eagerly, a non-store server replying
	// not-newer immediately) as suspicious and sleeps the difference, so
	// a misbehaving endpoint sees at most ~1/WatchMinRound requests per
	// replica instead of a fleet-wide busy loop. Zero takes
	// defaultWatchMinRound (1s); negative disables pacing.
	WatchMinRound time.Duration
	// Strict refuses uncertified updates: every fetched set must carry an
	// attestation at AttestURL whose SetDigest matches the bytes fetched,
	// and (when CertKey is set) whose HMAC verifies. A rejected update
	// never advances the client — the last attested set keeps serving.
	Strict bool
	// AttestURL is the attestation endpoint (the path AttestHandler is
	// mounted at). Required when Strict is set.
	AttestURL string
	// CertKey, when non-empty, is the shared certification key used to
	// verify attestation MACs in strict mode.
	CertKey []byte

	version int64
	etag    string
	last    Snapshot
	cache   kizzle.MatcherCache
	rng     *rand.Rand

	matcher atomic.Pointer[kizzle.Matcher]
	multi   atomic.Pointer[kizzle.MultiMatcher]

	wireFull       atomic.Int64
	wireDelta      atomic.Int64
	fetchesFull    atomic.Int64
	fetchesDelta   atomic.Int64
	notModified    atomic.Int64
	sigsCompiled   atomic.Int64
	sigsReused     atomic.Int64
	deltaFailures  atomic.Int64
	attestVerified atomic.Int64
	attestRejected atomic.Int64
	watchUpdates   atomic.Int64
	watchTicks     atomic.Int64
	watchDrops     atomic.Int64
	watchFallback  atomic.Int64
	watchPaced     atomic.Int64
}

// Matcher returns the compiled form of the last applied snapshot (nil
// before the first successful Fetch). Consumers deploy these directly —
// Fetch already compiled them for validation, so taking them here makes
// an update cost one (incremental) compilation total.
func (c *Client) Matcher() (*kizzle.Matcher, *kizzle.MultiMatcher) {
	return c.matcher.Load(), c.multi.Load()
}

// Metrics returns the client's /metrics fields: wire bytes by response
// kind, fetch counts, 304s, and incremental-compilation reuse counters.
func (c *Client) Metrics() map[string]any {
	return map[string]any{
		"wire_bytes_full":      c.wireFull.Load(),
		"wire_bytes_delta":     c.wireDelta.Load(),
		"fetches_full":         c.fetchesFull.Load(),
		"fetches_delta":        c.fetchesDelta.Load(),
		"not_modified":         c.notModified.Load(),
		"signatures_compiled":  c.sigsCompiled.Load(),
		"signatures_reused":    c.sigsReused.Load(),
		"delta_apply_failures": c.deltaFailures.Load(),
		"attest_verified":      c.attestVerified.Load(),
		"attest_rejected":      c.attestRejected.Load(),
		"watch_updates":        c.watchUpdates.Load(),
		"watch_ticks":          c.watchTicks.Load(),
		"watch_drops":          c.watchDrops.Load(),
		"watch_fallback":       c.watchFallback.Load(),
		"watch_paced":          c.watchPaced.Load(),
	}
}

// Fetch asks the server for anything newer than the client's last applied
// version. It returns (snapshot, true) on an update and (zero, false) when
// already current. Updates are compile-validated before the client's state
// advances: a set that does not compile is never reported, and a delta
// that does not apply cleanly falls back to one full fetch.
func (c *Client) Fetch(ctx context.Context) (Snapshot, bool, error) {
	// Deltas need the retained base snapshot; before the first success
	// there is nothing to apply one to.
	snap, etag, ok, err := c.fetch(ctx, c.last.Version > 0)
	if err != nil || !ok {
		return Snapshot{}, false, err
	}
	return c.advance(ctx, snap, etag)
}

// advance runs one fetched snapshot through every deploy gate — compile
// validation, multi compilation, the strict attestation check — and
// commits the client's state only past all of them. Shared by the
// polling and watch paths, so a pushed update obeys exactly the gates a
// polled one does.
func (c *Client) advance(ctx context.Context, snap Snapshot, etag string) (Snapshot, bool, error) {
	m, stats, buildErr := c.cache.Build(snap.Signatures)
	if buildErr != nil {
		return Snapshot{}, false, buildErr
	}
	mm, err := kizzle.NewMultiMatcher(snap.Multi)
	if err != nil {
		return Snapshot{}, false, err
	}
	if c.Strict {
		// Certification gate: refuse to deploy bytes whose provenance the
		// publisher cannot attest. Runs after compile validation and before
		// any state advances, so a rejected set leaves the client exactly
		// where it was — last attested matcher serving, same poll baseline.
		if err := c.verifyAttestation(ctx, snap); err != nil {
			c.attestRejected.Add(1)
			return Snapshot{}, false, err
		}
		c.attestVerified.Add(1)
	}
	c.sigsCompiled.Add(int64(stats.SignaturesCompiled))
	c.sigsReused.Add(int64(stats.SignaturesReused))
	c.matcher.Store(m)
	c.multi.Store(mm)
	// All state — including the ETag — advances only past every gate, so
	// a rejected update is re-encountered (and re-rejected) on the next
	// poll instead of being silently 304-skipped.
	c.etag = etag
	c.version = snap.Version
	c.last = snap
	return snap, true, nil
}

// verifyAttestation enforces strict mode for one fetched snapshot: the
// server must hold an attestation for the snapshot's version, its
// SetDigest must equal the digest of the signature set the client
// actually reconstructed (a delta that rebuilt different bytes fails
// here even if the server's own set is attested), and when a
// certification key is configured the attestation's HMAC must verify.
func (c *Client) verifyAttestation(ctx context.Context, snap Snapshot) error {
	if c.AttestURL == "" {
		return errors.New("sigdb: strict mode without AttestURL")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	url := fmt.Sprintf("%s?version=%d", c.AttestURL, snap.Version)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return fmt.Errorf("sigdb: build attestation request: %w", err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("sigdb: fetch attestation: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("sigdb: version %d is unattested", snap.Version)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("sigdb: attestation endpoint returned %s", resp.Status)
	}
	var att Attestation
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxUpdateBytes)).Decode(&att); err != nil {
		return fmt.Errorf("sigdb: decode attestation: %w", err)
	}
	if att.Version != snap.Version {
		return fmt.Errorf("sigdb: attestation covers version %d, want %d", att.Version, snap.Version)
	}
	got, err := snap.SetDigest()
	if err != nil {
		return err
	}
	if att.SetDigest != got {
		return fmt.Errorf("sigdb: attestation digest %.12s.. does not match fetched set %.12s..", att.SetDigest, got)
	}
	if len(c.CertKey) > 0 && !att.VerifyMAC(c.CertKey) {
		return fmt.Errorf("sigdb: attestation for version %d fails signature verification", snap.Version)
	}
	return nil
}

// statusError carries a non-OK HTTP status so callers can classify it
// (the watch path downgrades 404/405/501 to "endpoint unsupported").
type statusError struct {
	code   int
	status string
}

func (e *statusError) Error() string { return "sigdb: server returned " + e.status }

// fetch performs one conditional GET against the poll endpoint; see
// fetchFrom.
func (c *Client) fetch(ctx context.Context, wantDelta bool) (Snapshot, string, bool, error) {
	return c.fetchFrom(ctx, c.URL, wantDelta, true)
}

// fetchFrom performs one GET against base (the poll endpoint or the
// long-poll watch endpoint — both speak the identical wire format),
// optionally asking for a delta, and returns the (reconstructed) full
// snapshot plus the response's ETag. The caller commits the ETag once
// the update passes every gate; fetchFrom itself must not, or a rejected
// update would 304 away on the next poll. conditional controls the
// If-None-Match header: the watch endpoint decides on since alone, and a
// parked watch request must not 304 against the ETag it already holds.
func (c *Client) fetchFrom(ctx context.Context, base string, wantDelta, conditional bool) (Snapshot, string, bool, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	url := fmt.Sprintf("%s?since=%d", base, c.version)
	if wantDelta {
		url += "&delta=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Snapshot{}, "", false, fmt.Errorf("sigdb: build request: %w", err)
	}
	if conditional && c.etag != "" {
		req.Header.Set("If-None-Match", c.etag)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return Snapshot{}, "", false, fmt.Errorf("sigdb: fetch: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		c.notModified.Add(1)
		return Snapshot{}, "", false, nil
	case http.StatusOK:
	default:
		return Snapshot{}, "", false, &statusError{code: resp.StatusCode, status: resp.Status}
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return Snapshot{}, "", false, fmt.Errorf("sigdb: read update: %w", err)
	}
	var probe struct {
		IsDelta bool `json:"delta"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return Snapshot{}, "", false, fmt.Errorf("sigdb: decode update: %w", err)
	}
	etag := resp.Header.Get("ETag")
	if !probe.IsDelta {
		var snap Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			return Snapshot{}, "", false, fmt.Errorf("sigdb: decode update: %w", err)
		}
		c.wireFull.Add(int64(len(body)))
		c.fetchesFull.Add(1)
		return snap, etag, true, nil
	}
	var d Delta
	if err := json.Unmarshal(body, &d); err != nil {
		return Snapshot{}, "", false, fmt.Errorf("sigdb: decode delta: %w", err)
	}
	c.wireDelta.Add(int64(len(body)))
	c.fetchesDelta.Add(1)
	snap, err := d.Apply(c.last)
	if err != nil {
		// An inapplicable delta (base drift, truncated history semantics)
		// must not deploy a guess; take one full snapshot instead.
		c.deltaFailures.Add(1)
		return c.fetch(ctx, false)
	}
	return snap, etag, true, nil
}

// seedCounter de-duplicates default jitter seeds across clients created
// in the same nanosecond (fleet tests construct replicas in a tight
// loop).
var seedCounter atomic.Int64

// jitterRand returns this client's private jitter source, seeding it on
// first use. Per-instance state keeps fleet schedules independent of the
// process-global math/rand — deterministic when JitterSeed is set, and
// never perturbed by (or perturbing) other packages' random draws.
func (c *Client) jitterRand() *rand.Rand {
	if c.rng == nil {
		seed := c.JitterSeed
		if seed == 0 {
			seed = time.Now().UnixNano() ^ (seedCounter.Add(1) << 40)
		}
		c.rng = rand.New(rand.NewSource(seed))
	}
	return c.rng
}

// jitteredInterval spreads interval by ±Jitter.
func (c *Client) jitteredInterval(interval time.Duration) time.Duration {
	if c.Jitter <= 0 {
		return interval
	}
	f := 1 + c.Jitter*(2*c.jitterRand().Float64()-1)
	d := time.Duration(float64(interval) * f)
	if d <= 0 {
		d = interval
	}
	return d
}

// Poll fetches on the given interval (jittered per round when Jitter is
// set) and hands each new snapshot to apply, until ctx is cancelled.
// Transient fetch errors are reported to onError (which may be nil) and
// polling continues — one failed request must not kill the update loop.
func (c *Client) Poll(ctx context.Context, interval time.Duration, apply func(Snapshot), onError func(error)) {
	timer := time.NewTimer(c.jitteredInterval(interval))
	defer timer.Stop()
	for {
		snap, updated, err := c.Fetch(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if onError != nil {
				onError(err)
			}
		} else if updated {
			apply(snap)
		}
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		timer.Reset(c.jitteredInterval(interval))
	}
}
