package sigdb

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kizzle"
	"kizzle/gateway"
	"kizzle/synth"
)

// webkitTrainDay is mid-epoch for every phishing-kit family (no version
// flips between day-1 known seeding and the day's traffic), so the
// webkit compile is deterministic across the days this file uses.
const webkitTrainDay = 34

// trainWebkitSignatures compiles the phishing-kit stream under the
// webkit ingest profile with workload-namespaced known labels, the way
// a sigserve publisher running -profile webkit does.
func trainWebkitSignatures(t *testing.T, day int) []kizzle.Signature {
	t.Helper()
	c := kizzle.New(kizzle.WithSignatureSlack(2), kizzle.WithProfile("webkit"))
	for _, fam := range synth.WebkitKits() {
		c.AddKnown("webkit/"+fam.String(), synth.WebkitPayload(fam, day-1))
	}
	cfg := synth.DefaultWebkitConfig()
	cfg.BenignPerDay = 20
	stream, err := synth.NewWebkitStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var batch []kizzle.Sample
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
	}
	res, err := c.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Signatures) == 0 {
		t.Fatal("no webkit signatures trained")
	}
	for _, sig := range res.Signatures {
		if !strings.HasPrefix(sig.Family(), "webkit/") {
			t.Fatalf("webkit compile produced non-namespaced family %q", sig.Family())
		}
	}
	return res.Signatures
}

// TestNamespacedFamiliesEndToEnd walks a mixed JS + phishing-kit set
// through the whole distribution chain — certified publish, delta
// computation, strict-client delta reconstruction, attestation digest,
// gateway verdict — and checks the workload/family form survives every
// hop: the delta names the changed webkit family with its namespace,
// the reconstructed snapshot hashes to the attested digest, and a
// gateway built from it reports phishing hits under webkit/ names.
func TestNamespacedFamiliesEndToEnd(t *testing.T) {
	day := synth.Date(time.August, 5)
	jsV1 := trainSignatures(t, day)
	wkV1 := trainWebkitSignatures(t, webkitTrainDay)
	v1 := append(append([]kizzle.Signature{}, jsV1...), wkV1...)

	// v2 changes both workloads: one JS family swaps to the next day's
	// set, and one webkit family gains an extra signature (relabeled from
	// a spare JS one — the cheapest deterministic content change).
	jsV2, jsChanged := oneFamilyChange(t, jsV1, trainSignatures(t, day+1))
	wkChanged := wkV1[0].Family()
	extra := renameFamily(t, jsV1[len(jsV1)-1], wkChanged)
	v2 := append(append([]kizzle.Signature{}, jsV2...), wkV1...)
	v2 = append(v2, extra)

	key := []byte("namespace-e2e-key")
	mixedPath := PathDescriptor{Mode: "fleet", Shards: 2, Dispatch: "stream", Affinity: true, Profile: "js,webkit"}
	store := New()
	store.SetCertKey(key)
	if _, _, _, err := store.PublishAttested(v1, nil, "corpus-day1", mixedPath, testVerifyPath); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/signatures", store.Handler())
	mux.Handle("/attest", store.AttestHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()
	ctx := context.Background()
	strictClient := func() *Client {
		return &Client{URL: srv.URL + "/signatures", Strict: true, AttestURL: srv.URL + "/attest", CertKey: key}
	}

	deltaClient := strictClient()
	if _, ok, err := deltaClient.Fetch(ctx); err != nil || !ok {
		t.Fatalf("initial fetch: ok=%v err=%v", ok, err)
	}
	if _, _, _, err := store.PublishAttested(v2, nil, "corpus-day2", mixedPath, testVerifyPath); err != nil {
		t.Fatal(err)
	}

	// The server-side delta names changed families verbatim: the bare JS
	// family and the namespaced webkit one, never a stripped basename.
	_, d := store.snapshotAndDelta(1)
	if d == nil {
		t.Fatal("no delta offered for the immediately preceding version")
	}
	if _, ok := d.Changed[jsChanged]; !ok {
		t.Fatalf("delta changed set %v missing changed JS family %q", d.Families, jsChanged)
	}
	if _, ok := d.Changed[wkChanged]; !ok {
		t.Fatalf("delta changed set %v missing changed webkit family %q", d.Families, wkChanged)
	}
	if base := strings.TrimPrefix(wkChanged, "webkit/"); d.Changed[base] != nil {
		t.Fatalf("delta carries the stripped basename %q alongside %q", base, wkChanged)
	}
	for fam := range d.Changed {
		if fam != jsChanged && fam != wkChanged {
			t.Fatalf("delta recompiles untouched family %q", fam)
		}
	}

	got, ok, err := deltaClient.Fetch(ctx)
	if err != nil || !ok {
		t.Fatalf("delta fetch: ok=%v err=%v", ok, err)
	}
	if deltaClient.Metrics()["fetches_delta"].(int64) != 1 {
		t.Fatalf("delta path not taken: %v", deltaClient.Metrics())
	}

	// Delta reconstruction is byte-equivalent to a full download and
	// hashes to the digest the publisher attested for this version.
	fullClient := strictClient()
	want, ok, err := fullClient.Fetch(ctx)
	if err != nil || !ok {
		t.Fatalf("full fetch: ok=%v err=%v", ok, err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("delta-updated snapshot differs from full download:\n%.200s\nvs\n%.200s", gotJSON, wantJSON)
	}
	att, okAtt := store.Attestation(got.Version)
	if !okAtt {
		t.Fatalf("no attestation for v%d", got.Version)
	}
	gotDigest, err := got.SetDigest()
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != att.SetDigest {
		t.Fatalf("delta-reconstructed set digest %s, attested %s", gotDigest, att.SetDigest)
	}
	if att.Primary.Profile != "js,webkit" {
		t.Fatalf("attested primary-path profile %q, want js,webkit", att.Primary.Profile)
	}

	// Both namespaces survive reconstruction, and a gateway built from
	// the reconstructed set reports phishing hits under webkit/ names.
	var bare, namespaced int
	for _, sig := range got.Signatures {
		if strings.HasPrefix(sig.Family(), "webkit/") {
			namespaced++
		} else {
			bare++
		}
	}
	if bare == 0 || namespaced == 0 {
		t.Fatalf("reconstructed set has %d bare and %d namespaced families; want both > 0", bare, namespaced)
	}
	m, _, err := got.Matcher()
	if err != nil {
		t.Fatal(err)
	}
	vetter := gateway.NewVetter(m)
	cfg := synth.DefaultWebkitConfig()
	stream, err := synth.NewWebkitStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blocked := 0
	for _, s := range stream.MaliciousDay(webkitTrainDay) {
		dec := vetter.Vet(s.Content)
		if !dec.Blocked {
			continue
		}
		if !strings.HasPrefix(dec.Family, "webkit/") {
			t.Fatalf("gateway blocked phishing sample under non-namespaced family %q", dec.Family)
		}
		blocked++
	}
	if blocked == 0 {
		t.Fatal("gateway built from the delta-reconstructed set blocked no phishing traffic")
	}
}

// renameFamily relabels a trained signature through its JSON form — the
// only way a caller outside the compiler can hold a structurally valid
// signature under an arbitrary family name.
func renameFamily(t *testing.T, sig kizzle.Signature, fam string) kizzle.Signature {
	t.Helper()
	raw, err := json.Marshal(sig)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	fields["family"], err = json.Marshal(fam)
	if err != nil {
		t.Fatal(err)
	}
	raw, err = json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	var out kizzle.Signature
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPublishRejectsAmbiguousFamilies pins the namespacing guardrail on
// every publish entry point: a bare family and a namespaced one sharing
// a basename cannot coexist in a set (consumers keying thresholds or
// match reports by basename could not attribute hits to a workload),
// while distinct namespaces over the same basename are fine.
func TestPublishRejectsAmbiguousFamilies(t *testing.T) {
	day := synth.Date(time.August, 5)
	sigs := trainSignatures(t, day)
	if len(sigs) < 2 {
		t.Fatalf("need at least 2 trained signatures, got %d", len(sigs))
	}
	bare := renameFamily(t, sigs[0], "strato_v2")
	clashing := renameFamily(t, sigs[1], "webkit/strato_v2")
	ambiguous := []kizzle.Signature{bare, clashing}

	store := New()
	wantErr := "ambiguous family names"
	if _, _, err := store.Publish(ambiguous, nil); err == nil || !strings.Contains(err.Error(), wantErr) {
		t.Fatalf("Publish accepted bare+namespaced collision (err=%v)", err)
	}
	if _, err := store.Replace(ambiguous, nil); err == nil || !strings.Contains(err.Error(), wantErr) {
		t.Fatalf("Replace accepted bare+namespaced collision (err=%v)", err)
	}
	store.SetCertKey([]byte("collision-key"))
	if _, _, _, err := store.PublishAttested(ambiguous, nil, "corpus", testPrimaryPath, testVerifyPath); err == nil || !strings.Contains(err.Error(), wantErr) {
		t.Fatalf("PublishAttested accepted bare+namespaced collision (err=%v)", err)
	}
	if store.Version() != 0 {
		t.Fatalf("rejected publishes bumped the store to v%d", store.Version())
	}

	// Distinct namespaces sharing a basename are unambiguous.
	fine := []kizzle.Signature{
		renameFamily(t, sigs[0], "webkit/strato_v2"),
		renameFamily(t, sigs[1], "mailer/strato_v2"),
	}
	if _, _, err := store.Publish(fine, nil); err != nil {
		t.Fatalf("distinct namespaces over one basename rejected: %v", err)
	}
}
