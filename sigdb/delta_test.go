package sigdb

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kizzle"
	"kizzle/synth"
)

// oneFamilyChange returns base with one family's signatures swapped for
// that family's set from another training day — the steady-state shape of
// a provider update, where a day's batch touches a kit or two out of
// dozens. It also returns the changed family.
func oneFamilyChange(t *testing.T, base, other []kizzle.Signature) ([]kizzle.Signature, string) {
	t.Helper()
	target := base[0].Family()
	var out []kizzle.Signature
	for _, sig := range base {
		if sig.Family() != target {
			out = append(out, sig)
		}
	}
	n := len(out)
	for _, sig := range other {
		if sig.Family() == target {
			out = append(out, sig)
		}
	}
	if len(out) == n {
		t.Fatalf("other day trained no signatures for %s", target)
	}
	return out, target
}

// TestClientDeltaEquivalence is the delta≡full differential: a replica
// updated through the delta path must hold the byte-identical snapshot a
// full download yields, produce identical scan results, spend less than
// half the wire bytes on a one-family change, and recompile only the
// changed family. Both publishes are certified (PublishAttested) and
// both clients run strict, so the differential also proves the delta
// channel composes with attestation: the snapshot a replica reconstructs
// from a delta hashes to exactly the SetDigest the publisher attested.
func TestClientDeltaEquivalence(t *testing.T) {
	day := synth.Date(time.August, 5)
	v1 := trainSignatures(t, day)
	v2, changed := oneFamilyChange(t, v1, trainSignatures(t, day+1))

	key := []byte("delta-equivalence-key")
	store := New()
	store.SetCertKey(key)
	if _, _, _, err := store.PublishAttested(v1, nil, "corpus-day1", testPrimaryPath, testVerifyPath); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/signatures", store.Handler())
	mux.Handle("/attest", store.AttestHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()
	ctx := context.Background()
	strictClient := func() *Client {
		return &Client{URL: srv.URL + "/signatures", Strict: true, AttestURL: srv.URL + "/attest", CertKey: key}
	}

	deltaClient := strictClient()
	if _, ok, err := deltaClient.Fetch(ctx); err != nil || !ok {
		t.Fatalf("initial fetch: ok=%v err=%v", ok, err)
	}
	if _, _, _, err := store.PublishAttested(v2, nil, "corpus-day2", testPrimaryPath, testVerifyPath); err != nil {
		t.Fatal(err)
	}
	got, ok, err := deltaClient.Fetch(ctx)
	if err != nil || !ok {
		t.Fatalf("delta fetch: ok=%v err=%v", ok, err)
	}

	fullClient := strictClient()
	want, ok, err := fullClient.Fetch(ctx)
	if err != nil || !ok {
		t.Fatalf("full fetch: ok=%v err=%v", ok, err)
	}

	// The delta-reconstructed snapshot must hash to the digest the
	// publisher attested for this version — the end-to-end certification
	// claim across the delta wire.
	att, okAtt := store.Attestation(got.Version)
	if !okAtt {
		t.Fatalf("no attestation for delta-fetched v%d", got.Version)
	}
	gotDigest, err := got.SetDigest()
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != att.SetDigest {
		t.Fatalf("delta-reconstructed set digest %s, attested %s", gotDigest, att.SetDigest)
	}
	if deltaClient.Metrics()["attest_verified"].(int64) != 2 {
		t.Errorf("attest_verified = %v, want 2 (both strict fetches)", deltaClient.Metrics()["attest_verified"])
	}

	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("delta-updated snapshot differs from full download:\n%.200s\nvs\n%.200s", gotJSON, wantJSON)
	}

	dm := deltaClient.Metrics()
	if dm["fetches_delta"].(int64) != 1 {
		t.Fatalf("delta path not taken: %v", dm)
	}
	deltaBytes := dm["wire_bytes_delta"].(int64)
	fullBytes := fullClient.Metrics()["wire_bytes_full"].(int64)
	if deltaBytes*2 > fullBytes {
		t.Errorf("one-family delta cost %d wire bytes vs %d full — less than 50%% savings", deltaBytes, fullBytes)
	}
	if reused := dm["signatures_reused"].(int64); reused == 0 {
		t.Error("delta update recompiled every family; incremental cache unused")
	}

	// The compiled form deployed from the delta must scan identically.
	mDelta, _ := deltaClient.Matcher()
	mFull, _ := fullClient.Matcher()
	if mDelta == nil || mFull == nil {
		t.Fatal("Matcher() returned nil after successful Fetch")
	}
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 10
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream.Day(day + 1) {
		a, b := mDelta.Scan(s.Content), mFull.Scan(s.Content)
		if len(a) != len(b) {
			t.Fatalf("sample %s: %d vs %d matches", s.ID, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("sample %s match %d: %+v vs %+v", s.ID, i, a[i], b[i])
			}
		}
	}
	_ = changed
}

// TestDeltaUnavailableFallsBack: a client whose version fell out of the
// digest history must get a full snapshot (correctness never depends on
// history depth), and snapshotAndDelta must refuse deltas it cannot
// prove.
func TestDeltaUnavailableFallsBack(t *testing.T) {
	day := synth.Date(time.August, 5)
	a := trainSignatures(t, day)
	b, _ := oneFamilyChange(t, a, trainSignatures(t, day+1))

	store := New()
	if _, err := store.Replace(a, nil); err != nil {
		t.Fatal(err)
	}
	// Push version 1 beyond the history window.
	for i := 0; i < deltaHistory+1; i++ {
		sigs := a
		if i%2 == 0 {
			sigs = b
		}
		if _, err := store.Replace(sigs, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, d := store.snapshotAndDelta(1); d != nil {
		t.Error("delta offered for a version outside history")
	}
	if _, d := store.snapshotAndDelta(store.Version() - 1); d == nil {
		t.Error("no delta for the immediately preceding version")
	}
	if _, d := store.snapshotAndDelta(0); d != nil {
		t.Error("delta offered against version 0")
	}
	if _, d := store.snapshotAndDelta(store.Version()); d != nil {
		t.Error("delta offered to an up-to-date client")
	}

	// Over the wire: a stale since with delta=1 still yields a usable full
	// snapshot.
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?since=1&delta=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != store.Version() || len(snap.Signatures) == 0 {
		t.Fatalf("fallback snapshot v%d with %d signatures", snap.Version, len(snap.Signatures))
	}
}

// TestDeltaApplyRejectsMismatch: inconsistent deltas must error, never
// fabricate a signature set.
func TestDeltaApplyRejectsMismatch(t *testing.T) {
	day := synth.Date(time.August, 5)
	sigs := trainSignatures(t, day)
	prev := Snapshot{Version: 3, Signatures: sigs}

	if _, err := (Delta{Since: 2, Version: 4}).Apply(prev); err == nil {
		t.Error("wrong base version accepted")
	}
	if _, err := (Delta{Since: 3, Version: 4, Families: []string{"X"}, Order: []int{5}}).Apply(prev); err == nil {
		t.Error("out-of-range order index accepted")
	}
	fam := sigs[0].Family()
	over := Delta{Since: 3, Version: 4, Families: []string{fam}, Order: make([]int, len(sigs)+10)}
	if _, err := over.Apply(prev); err == nil {
		t.Error("over-consuming delta accepted")
	}
	under := Delta{Since: 3, Version: 4, Families: []string{fam}, Order: []int{0}}
	if len(sigsOfFamily(sigs, fam)) > 1 {
		if _, err := under.Apply(prev); err == nil {
			t.Error("under-consuming delta accepted")
		}
	}
}

func sigsOfFamily(sigs []kizzle.Signature, fam string) []kizzle.Signature {
	var out []kizzle.Signature
	for _, s := range sigs {
		if s.Family() == fam {
			out = append(out, s)
		}
	}
	return out
}

// TestHandlerETag: every GET carries a versioned ETag and If-None-Match
// short-circuits to 304; the Client uses it so steady-state polls move no
// body bytes.
func TestHandlerETag(t *testing.T) {
	day := synth.Date(time.August, 5)
	store := New()
	if _, err := store.Replace(trainSignatures(t, day), nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on 200")
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match hit returned %d, want 304", resp.StatusCode)
	}

	c := &Client{URL: srv.URL}
	ctx := context.Background()
	if _, ok, err := c.Fetch(ctx); err != nil || !ok {
		t.Fatalf("first fetch: ok=%v err=%v", ok, err)
	}
	if _, ok, err := c.Fetch(ctx); err != nil || ok {
		t.Fatalf("second fetch: ok=%v err=%v, want 304", ok, err)
	}
	if c.Metrics()["not_modified"].(int64) != 1 {
		t.Errorf("not_modified = %v, want 1", c.Metrics()["not_modified"])
	}
}

// TestJitteredInterval pins the poll-jitter bounds: within ±Jitter of the
// interval, never non-positive, and actually spread. The jitter source is
// per-client (seeded via JitterSeed), so the test depends on no global
// state and two clients with the same seed draw the same sequence.
func TestJitteredInterval(t *testing.T) {
	c := &Client{Jitter: 0.1, JitterSeed: 42}
	base := time.Second
	lo, hi := time.Duration(float64(base)*0.9), time.Duration(float64(base)*1.1)
	distinct := map[time.Duration]bool{}
	var seq []time.Duration
	for i := 0; i < 500; i++ {
		d := c.jitteredInterval(base)
		if d < lo || d > hi {
			t.Fatalf("jittered interval %v outside [%v, %v]", d, lo, hi)
		}
		distinct[d] = true
		seq = append(seq, d)
	}
	if len(distinct) < 10 {
		t.Errorf("jitter produced only %d distinct intervals", len(distinct))
	}
	// Same seed, same sequence: deterministic under test, yet two clients
	// with different seeds (or the default time-derived seed) still spread.
	twin := &Client{Jitter: 0.1, JitterSeed: 42}
	for i, want := range seq {
		if got := twin.jitteredInterval(base); got != want {
			t.Fatalf("same-seed draw %d: got %v, want %v", i, got, want)
		}
	}
	other := &Client{Jitter: 0.1, JitterSeed: 43}
	same := 0
	for _, want := range seq {
		if other.jitteredInterval(base) == want {
			same++
		}
	}
	if same == len(seq) {
		t.Error("different seeds produced identical jitter sequences")
	}
	if (&Client{}).jitteredInterval(base) != base {
		t.Error("zero jitter must leave the interval unchanged")
	}
}
