package sigdb

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kizzle"
	"kizzle/synth"
)

var (
	testPrimaryPath = PathDescriptor{Mode: "fleet", Shards: 2, Dispatch: "stream", Affinity: true}
	testVerifyPath  = PathDescriptor{Mode: "in-process", Dispatch: "batch", Seed: 7}
)

// TestAttestationSignVerify pins the MAC scheme: sign/verify round-trips,
// any field mutation breaks verification, an empty or malformed MAC never
// verifies, and the key actually matters.
func TestAttestationSignVerify(t *testing.T) {
	key := []byte("test-certification-key")
	att := Attestation{
		Version:      3,
		CorpusDigest: "aa11",
		SetDigest:    "bb22",
		Primary:      testPrimaryPath,
		Verify:       testVerifyPath,
		Time:         "2026-08-08T00:00:00Z",
	}
	att.MAC = att.Sign(key)
	if !att.VerifyMAC(key) {
		t.Fatal("signed attestation fails verification under the signing key")
	}
	if att.VerifyMAC([]byte("some-other-key")) {
		t.Error("attestation verifies under the wrong key")
	}
	tampered := att
	tampered.SetDigest = "cc33"
	if tampered.VerifyMAC(key) {
		t.Error("mutated SetDigest still verifies")
	}
	tampered = att
	tampered.Version = 4
	if tampered.VerifyMAC(key) {
		t.Error("mutated Version still verifies")
	}
	unsigned := att
	unsigned.MAC = ""
	if unsigned.VerifyMAC(key) {
		t.Error("empty MAC verifies")
	}
	garbled := att
	garbled.MAC = "not-hex"
	if garbled.VerifyMAC(key) {
		t.Error("non-hex MAC verifies")
	}
}

// TestPublishAttested covers the certified-publish state machine: a
// changed set installs and gains an attestation whose digest matches the
// installed snapshot, an unchanged republish returns the existing
// attestation without a version bump or a new audit record, and a second
// change chains its attestation to the first through the audit log.
func TestPublishAttested(t *testing.T) {
	day := synth.Date(time.August, 5)
	v1 := trainSignatures(t, day)
	v2, _ := oneFamilyChange(t, v1, trainSignatures(t, day+1))

	store := New()
	store.SetCertKey([]byte("k"))

	version, changed, att, err := store.PublishAttested(v1, nil, "corpus-1", testPrimaryPath, testVerifyPath)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || !changed {
		t.Fatalf("first publish: v%d changed=%v, want v1 true", version, changed)
	}
	wantDigest, err := store.Snapshot().SetDigest()
	if err != nil {
		t.Fatal(err)
	}
	if att.SetDigest != wantDigest {
		t.Fatalf("attestation digest %s, snapshot digest %s", att.SetDigest, wantDigest)
	}
	if att.CorpusDigest != "corpus-1" || att.Primary != testPrimaryPath || att.Verify != testVerifyPath {
		t.Fatalf("attestation lost provenance fields: %+v", att)
	}
	if !att.VerifyMAC([]byte("k")) {
		t.Fatal("attestation unsigned despite SetCertKey")
	}

	// Unchanged republish: no bump, no new record, same attestation.
	version, changed, again, err := store.PublishAttested(v1, nil, "corpus-1", testPrimaryPath, testVerifyPath)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || changed {
		t.Fatalf("unchanged republish: v%d changed=%v, want v1 false", version, changed)
	}
	if again != att {
		t.Fatalf("unchanged republish returned a different attestation:\n%+v\nvs\n%+v", again, att)
	}
	if n := len(store.AuditRecords()); n != 1 {
		t.Fatalf("audit log has %d records after an unchanged republish, want 1", n)
	}

	// Changed set: new version, new attestation chained to the first.
	version, changed, att2, err := store.PublishAttested(v2, nil, "corpus-2", testPrimaryPath, testVerifyPath)
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 || !changed {
		t.Fatalf("second publish: v%d changed=%v, want v2 true", version, changed)
	}
	recs := store.AuditRecords()
	if len(recs) != 2 {
		t.Fatalf("audit log has %d records, want 2", len(recs))
	}
	if att2.Prev != recs[0].Sum {
		t.Fatalf("second attestation pins %.12q, want the first record's chain digest %.12q", att2.Prev, recs[0].Sum)
	}
	if got, ok := store.Attestation(1); !ok || got != att {
		t.Error("version 1 attestation lost after the second publish")
	}

	// A plain Publish on top leaves the new version unattested; the
	// handler answers 404 for it (the strict-client signal).
	if _, _, err := store.Publish(v1, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Attestation(3); ok {
		t.Error("uncertified Publish produced an attestation")
	}
}

// TestPublishAttestedBackfillsUnattested: an unchanged certified publish
// on a version that predates certification attests it in place — the
// upgrade path for an operator enabling -certify over an existing store.
func TestPublishAttestedBackfills(t *testing.T) {
	day := synth.Date(time.August, 5)
	sigs := trainSignatures(t, day)
	store := New()
	if _, _, err := store.Publish(sigs, nil); err != nil {
		t.Fatal(err)
	}
	version, changed, att, err := store.PublishAttested(sigs, nil, "corpus", testPrimaryPath, testVerifyPath)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || changed {
		t.Fatalf("backfill publish: v%d changed=%v, want v1 false", version, changed)
	}
	if got, ok := store.Attestation(1); !ok || got != att {
		t.Fatal("pre-certification version not attested in place")
	}
}

// TestAttestHandler pins the /attest wire surface: explicit and default
// version lookup, 404 for unattested versions, the full audit dump, and
// method/parameter validation.
func TestAttestHandler(t *testing.T) {
	day := synth.Date(time.August, 5)
	store := New()
	store.SetCertKey([]byte("k"))
	if _, _, _, err := store.PublishAttested(trainSignatures(t, day), nil, "c", testPrimaryPath, testVerifyPath); err != nil {
		t.Fatal(err)
	}
	if err := store.RecordQuarantine(Quarantine{Reason: "test disagreement"}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(store.AttestHandler())
	defer srv.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	resp, err := http.Get(srv.URL + "?version=1")
	if err != nil {
		t.Fatal(err)
	}
	var att Attestation
	if err := json.NewDecoder(resp.Body).Decode(&att); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if att.Version != 1 || !att.VerifyMAC([]byte("k")) {
		t.Fatalf("served attestation invalid: %+v", att)
	}

	resp, err = http.Get(srv.URL) // default: current version
	if err != nil {
		t.Fatal(err)
	}
	var cur Attestation
	if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cur != att {
		t.Fatalf("default lookup served %+v, want current version's attestation", cur)
	}

	if r := get("?version=99"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unattested version: %d, want 404", r.StatusCode)
	}
	if r := get("?version=bogus"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed version: %d, want 400", r.StatusCode)
	}
	postResp, err := http.Post(srv.URL, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: %d, want 405", postResp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "?audit=1")
	if err != nil {
		t.Fatal(err)
	}
	var recs []AuditRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(recs) != 2 || recs[0].Kind != AuditAttest || recs[1].Kind != AuditQuarantine {
		t.Fatalf("audit dump: %d records (%+v), want attest then quarantine", len(recs), recs)
	}
	if recs[1].Prev != recs[0].Sum {
		t.Error("audit dump chain broken between records 1 and 2")
	}
}

// attestedFixture builds a store with an attested v1 behind a mux serving
// /signatures and /attest, mirroring sigserve's mounts.
func attestedFixture(t *testing.T, key []byte) (*Store, *httptest.Server, []kizzle.Signature) {
	t.Helper()
	day := synth.Date(time.August, 5)
	sigs := trainSignatures(t, day)
	store := New()
	store.SetCertKey(key)
	if _, _, _, err := store.PublishAttested(sigs, nil, "c1", testPrimaryPath, testVerifyPath); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/signatures", store.Handler())
	mux.Handle("/attest", store.AttestHandler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return store, srv, sigs
}

// TestStrictClientAcceptsAttested: the happy path — a strict client with
// the shared key deploys an attested, signed set and counts the
// verification.
func TestStrictClientAcceptsAttested(t *testing.T) {
	key := []byte("shared-key")
	_, srv, _ := attestedFixture(t, key)
	c := &Client{URL: srv.URL + "/signatures", Strict: true, AttestURL: srv.URL + "/attest", CertKey: key}
	snap, ok, err := c.Fetch(t.Context())
	if err != nil || !ok {
		t.Fatalf("strict fetch of attested set: ok=%v err=%v", ok, err)
	}
	if m, _ := c.Matcher(); m == nil {
		t.Fatal("no matcher deployed")
	}
	if snap.Version != 1 {
		t.Fatalf("deployed v%d, want v1", snap.Version)
	}
	if c.Metrics()["attest_verified"].(int64) != 1 {
		t.Errorf("attest_verified = %v, want 1", c.Metrics()["attest_verified"])
	}
}

// TestStrictClientRejectsUnattested: an uncertified Replace lands a
// version with no attestation; a strict client must refuse it and keep
// serving the last attested set.
func TestStrictClientRejectsUnattested(t *testing.T) {
	key := []byte("shared-key")
	store, srv, sigs := attestedFixture(t, key)
	c := &Client{URL: srv.URL + "/signatures", Strict: true, AttestURL: srv.URL + "/attest", CertKey: key}
	if _, ok, err := c.Fetch(t.Context()); err != nil || !ok {
		t.Fatalf("fetch attested v1: ok=%v err=%v", ok, err)
	}
	prior, _ := c.Matcher()

	day := synth.Date(time.August, 5)
	v2, _ := oneFamilyChange(t, sigs, trainSignatures(t, day+1))
	if _, err := store.Replace(v2, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Fetch(t.Context()); err == nil || ok {
		t.Fatalf("strict client accepted unattested v2: ok=%v err=%v", ok, err)
	} else if !strings.Contains(err.Error(), "unattested") {
		t.Fatalf("rejection reason %q does not name the missing attestation", err)
	}
	if m, _ := c.Matcher(); m != prior {
		t.Error("rejected update replaced the deployed matcher")
	}
	if c.Metrics()["attest_rejected"].(int64) != 1 {
		t.Errorf("attest_rejected = %v, want 1", c.Metrics()["attest_rejected"])
	}
	// The rejection must not advance the poll baseline: the client keeps
	// re-encountering (and re-rejecting) the bad version rather than
	// silently skipping past it.
	if _, ok, err := c.Fetch(t.Context()); err == nil || ok {
		t.Fatalf("second fetch of unattested v2: ok=%v err=%v, want rejection", ok, err)
	}
}

// TestStrictClientRejectsBadSignature: an attestation whose MAC does not
// verify under the shared key (unsigned or forged) must be refused when
// the client holds a key.
func TestStrictClientRejectsBadSignature(t *testing.T) {
	_, srv, _ := attestedFixture(t, nil) // publisher signs nothing
	c := &Client{URL: srv.URL + "/signatures", Strict: true, AttestURL: srv.URL + "/attest", CertKey: []byte("shared-key")}
	if _, ok, err := c.Fetch(t.Context()); err == nil || ok {
		t.Fatalf("keyed strict client accepted an unsigned attestation: ok=%v err=%v", ok, err)
	} else if !strings.Contains(err.Error(), "signature verification") {
		t.Fatalf("rejection reason %q does not name the signature failure", err)
	}
	if m, _ := c.Matcher(); m != nil {
		t.Error("rejected update still deployed a matcher")
	}

	// Without a configured key the same unsigned attestation is accepted:
	// digest pinning alone, for deployments that do not share a secret.
	unkeyed := &Client{URL: srv.URL + "/signatures", Strict: true, AttestURL: srv.URL + "/attest"}
	if _, ok, err := unkeyed.Fetch(t.Context()); err != nil || !ok {
		t.Fatalf("unkeyed strict fetch: ok=%v err=%v", ok, err)
	}
}

// TestStrictClientRejectsDigestMismatch: an attestation that verifies
// cryptographically but covers different bytes than the client fetched
// must be refused — the digest binds the attestation to the exact set.
func TestStrictClientRejectsDigestMismatch(t *testing.T) {
	key := []byte("shared-key")
	store, _, _ := attestedFixture(t, key)
	att, ok := store.Attestation(1)
	if !ok {
		t.Fatal("fixture lost its attestation")
	}
	// A forged-but-validly-signed attestation for other bytes: the MAC
	// check passes, the digest check must still fail.
	att.SetDigest = strings.Repeat("ab", 32)
	att.MAC = att.Sign(key)
	mux := http.NewServeMux()
	mux.Handle("/signatures", store.Handler())
	mux.HandleFunc("/attest", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(att)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := &Client{URL: srv.URL + "/signatures", Strict: true, AttestURL: srv.URL + "/attest", CertKey: key}
	if _, ok, err := c.Fetch(t.Context()); err == nil || ok {
		t.Fatalf("strict client accepted a digest-mismatched attestation: ok=%v err=%v", ok, err)
	} else if !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("rejection reason %q does not name the digest mismatch", err)
	}
}

// TestAuditLogPersistence: a file-backed store's audit log survives
// reopen — records, chain links, and the attestation index — and new
// records keep extending the same chain.
func TestAuditLogPersistence(t *testing.T) {
	day := synth.Date(time.August, 5)
	v1 := trainSignatures(t, day)
	v2, _ := oneFamilyChange(t, v1, trainSignatures(t, day+1))
	path := filepath.Join(t.TempDir(), "sigs.json")

	store, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	store.SetCertKey([]byte("k"))
	if _, _, _, err := store.PublishAttested(v1, nil, "c1", testPrimaryPath, testVerifyPath); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := store.PublishAttested(v2, nil, "c2", testPrimaryPath, testVerifyPath); err != nil {
		t.Fatal(err)
	}
	before := store.AuditRecords()

	reopened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	after := reopened.AuditRecords()
	if len(after) != len(before) {
		t.Fatalf("reopen kept %d of %d audit records", len(after), len(before))
	}
	for i := range after {
		if after[i].Sum != before[i].Sum {
			t.Fatalf("record %d changed across reopen", i+1)
		}
	}
	if _, ok := reopened.Attestation(2); !ok {
		t.Fatal("attestation index not rebuilt on reopen")
	}
	reopened.SetCertKey([]byte("k"))
	if err := reopened.RecordQuarantine(Quarantine{Reason: "post-reopen"}); err != nil {
		t.Fatal(err)
	}
	recs := reopened.AuditRecords()
	if last := recs[len(recs)-1]; last.Prev != before[len(before)-1].Sum {
		t.Error("post-reopen record does not chain to the persisted log")
	}
}

// TestAuditLogCorruptionRecovery: a corrupted audit log recovers to the
// longest valid chained prefix — never fails Open, never fabricates
// history — and the rewritten log accepts chained appends again. Runs
// the three corruption shapes: garbage appended, a truncated tail, and a
// flipped byte mid-chain.
func TestAuditLogCorruptionRecovery(t *testing.T) {
	day := synth.Date(time.August, 5)
	v1 := trainSignatures(t, day)
	v2, _ := oneFamilyChange(t, v1, trainSignatures(t, day+1))

	seed := func(t *testing.T) (string, []AuditRecord) {
		path := filepath.Join(t.TempDir(), "sigs.json")
		store, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		store.SetCertKey([]byte("k"))
		if _, _, _, err := store.PublishAttested(v1, nil, "c1", testPrimaryPath, testVerifyPath); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := store.PublishAttested(v2, nil, "c2", testPrimaryPath, testVerifyPath); err != nil {
			t.Fatal(err)
		}
		if err := store.RecordQuarantine(Quarantine{Reason: "seed"}); err != nil {
			t.Fatal(err)
		}
		return path, store.AuditRecords()
	}

	reopenAndCheck := func(t *testing.T, path string, wantKept int, full []AuditRecord) {
		t.Helper()
		store, err := Open(path)
		if err != nil {
			t.Fatalf("Open after corruption: %v", err)
		}
		recs := store.AuditRecords()
		if len(recs) != wantKept {
			t.Fatalf("kept %d records, want %d", len(recs), wantKept)
		}
		for i, rec := range recs {
			if rec.Sum != full[i].Sum {
				t.Fatalf("kept record %d differs from the original", i+1)
			}
		}
		// The rewritten log must accept appends that chain cleanly.
		if err := store.RecordQuarantine(Quarantine{Reason: "post-recovery"}); err != nil {
			t.Fatal(err)
		}
		again, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		got := again.AuditRecords()
		if len(got) != wantKept+1 {
			t.Fatalf("post-recovery append not persisted: %d records, want %d", len(got), wantKept+1)
		}
		prev := ""
		for i, rec := range got {
			if err := rec.checkChain(int64(i+1), prev); err != nil {
				t.Fatalf("recovered chain invalid: %v", err)
			}
			prev = rec.Sum
		}
	}

	t.Run("garbage_appended", func(t *testing.T) {
		path, full := seed(t)
		f, err := os.OpenFile(path+".audit", os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString("{\"seq\": not json at all\n")
		f.Close()
		reopenAndCheck(t, path, 3, full)
	})

	t.Run("truncated_tail", func(t *testing.T) {
		path, full := seed(t)
		data, err := os.ReadFile(path + ".audit")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path+".audit", data[:len(data)-20], 0o644); err != nil {
			t.Fatal(err)
		}
		reopenAndCheck(t, path, 2, full)
	})

	t.Run("flipped_byte_mid_chain", func(t *testing.T) {
		path, full := seed(t)
		data, err := os.ReadFile(path + ".audit")
		if err != nil {
			t.Fatal(err)
		}
		// Flip a byte inside the second record's line: records 2 and 3
		// both drop (3 chains through 2), record 1 survives.
		lines := strings.SplitAfter(string(data), "\n")
		mid := []byte(lines[1])
		mid[len(mid)/2] ^= 0x01
		lines[1] = string(mid)
		if err := os.WriteFile(path+".audit", []byte(strings.Join(lines, "")), 0o644); err != nil {
			t.Fatal(err)
		}
		reopenAndCheck(t, path, 1, full)
	})
}
