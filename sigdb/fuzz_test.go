package sigdb

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzSignaturesPost fuzzes the push side of the distribution channel —
// the POST /signatures body is attacker-reachable on any publisher whose
// update endpoint is exposed. The handler must never panic, must never
// install a set that does not compile, and a 200 must always mean a
// well-formed, deployable snapshot.
func FuzzSignaturesPost(f *testing.F) {
	f.Add([]byte(`{"signatures":[]}`))
	f.Add([]byte(`{"signatures":null,"multi":null}`))
	f.Add([]byte(`{"signatures":[{"family":"Angler","elements":[{"kind":0,"literal":"eval","group":-1}],"samples":2}]}`))
	f.Add([]byte(`{"signatures":[{"family":"","elements":[],"samples":0}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, body []byte) {
		store := New()
		req := httptest.NewRequest(http.MethodPost, "/signatures", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		store.Handler().ServeHTTP(rec, req)
		switch {
		case rec.Code == http.StatusOK:
			// An accepted push must have installed a compilable snapshot.
			if store.Version() != 1 {
				t.Fatalf("200 response but store version = %d", store.Version())
			}
			if _, _, err := store.Snapshot().Matcher(); err != nil {
				t.Fatalf("accepted set does not compile: %v", err)
			}
		case store.Version() != 0:
			t.Fatalf("status %d but store version moved to %d", rec.Code, store.Version())
		}
	})
}

// FuzzDeltaSignatures fuzzes the pull side of the delta channel — the
// Delta document a replica applies comes off the network, so Apply must
// never panic, and any snapshot it does produce must be exactly as long
// as the delta's order vector and survive re-serialization. Inconsistent
// deltas must error (the client then falls back to a full fetch), never
// fabricate a signature set.
func FuzzDeltaSignatures(f *testing.F) {
	prevJSON := []byte(`{"version":3,"signatures":[` +
		`{"family":"Angler","elements":[{"kind":0,"literal":"eval","group":-1}],"samples":2},` +
		`{"family":"Angler","elements":[{"kind":0,"literal":"unescape","group":-1}],"samples":2},` +
		`{"family":"Nuclear","elements":[{"kind":0,"literal":"iframe","group":-1}],"samples":3}]}`)
	f.Add([]byte(`{"version":4,"since":3,"delta":true,"families":["Angler","Nuclear"],"order":[0,0,1],"changed":{}}`))
	f.Add([]byte(`{"version":4,"since":3,"delta":true,"families":["Nuclear"],"order":[0],` +
		`"changed":{"Nuclear":[{"family":"Nuclear","elements":[{"kind":0,"literal":"embed","group":-1}],"samples":1}]}}`))
	f.Add([]byte(`{"version":4,"since":2,"delta":true}`))
	f.Add([]byte(`{"version":4,"since":3,"delta":true,"families":["Angler"],"order":[-1]}`))
	f.Add([]byte(`{"version":4,"since":3,"delta":true,"families":["Angler"],"order":[0,0,0,0,0,0,0]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, body []byte) {
		var prev Snapshot
		if err := json.Unmarshal(prevJSON, &prev); err != nil {
			t.Fatal(err)
		}
		var d Delta
		if err := json.Unmarshal(body, &d); err != nil {
			return
		}
		snap, err := d.Apply(prev)
		if err != nil {
			return
		}
		if len(snap.Signatures) != len(d.Order) {
			t.Fatalf("applied snapshot has %d signatures for %d order slots", len(snap.Signatures), len(d.Order))
		}
		if snap.Version != d.Version {
			t.Fatalf("applied snapshot v%d, delta v%d", snap.Version, d.Version)
		}
		if _, err := json.Marshal(snap); err != nil {
			t.Fatalf("applied snapshot does not re-serialize: %v", err)
		}
	})
}
