package sigdb

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzSignaturesPost fuzzes the push side of the distribution channel —
// the POST /signatures body is attacker-reachable on any publisher whose
// update endpoint is exposed. The handler must never panic, must never
// install a set that does not compile, and a 200 must always mean a
// well-formed, deployable snapshot.
func FuzzSignaturesPost(f *testing.F) {
	f.Add([]byte(`{"signatures":[]}`))
	f.Add([]byte(`{"signatures":null,"multi":null}`))
	f.Add([]byte(`{"signatures":[{"family":"Angler","elements":[{"kind":0,"literal":"eval","group":-1}],"samples":2}]}`))
	f.Add([]byte(`{"signatures":[{"family":"","elements":[],"samples":0}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, body []byte) {
		store := New()
		req := httptest.NewRequest(http.MethodPost, "/signatures", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		store.Handler().ServeHTTP(rec, req)
		switch {
		case rec.Code == http.StatusOK:
			// An accepted push must have installed a compilable snapshot.
			if store.Version() != 1 {
				t.Fatalf("200 response but store version = %d", store.Version())
			}
			if _, _, err := store.Snapshot().Matcher(); err != nil {
				t.Fatalf("accepted set does not compile: %v", err)
			}
		case store.Version() != 0:
			t.Fatalf("status %d but store version moved to %d", rec.Code, store.Version())
		}
	})
}
