package sigdb

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSignaturesPost fuzzes the push side of the distribution channel —
// the POST /signatures body is attacker-reachable on any publisher whose
// update endpoint is exposed. The handler must never panic, must never
// install a set that does not compile, and a 200 must always mean a
// well-formed, deployable snapshot.
func FuzzSignaturesPost(f *testing.F) {
	f.Add([]byte(`{"signatures":[]}`))
	f.Add([]byte(`{"signatures":null,"multi":null}`))
	f.Add([]byte(`{"signatures":[{"family":"Angler","elements":[{"kind":0,"literal":"eval","group":-1}],"samples":2}]}`))
	f.Add([]byte(`{"signatures":[{"family":"","elements":[],"samples":0}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, body []byte) {
		store := New()
		req := httptest.NewRequest(http.MethodPost, "/signatures", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		store.Handler().ServeHTTP(rec, req)
		switch {
		case rec.Code == http.StatusOK:
			// An accepted push must have installed a compilable snapshot.
			if store.Version() != 1 {
				t.Fatalf("200 response but store version = %d", store.Version())
			}
			if _, _, err := store.Snapshot().Matcher(); err != nil {
				t.Fatalf("accepted set does not compile: %v", err)
			}
		case store.Version() != 0:
			t.Fatalf("status %d but store version moved to %d", rec.Code, store.Version())
		}
	})
}

// FuzzDeltaSignatures fuzzes the pull side of the delta channel — the
// Delta document a replica applies comes off the network, so Apply must
// never panic, and any snapshot it does produce must be exactly as long
// as the delta's order vector and survive re-serialization. Inconsistent
// deltas must error (the client then falls back to a full fetch), never
// fabricate a signature set.
func FuzzDeltaSignatures(f *testing.F) {
	prevJSON := []byte(`{"version":3,"signatures":[` +
		`{"family":"Angler","elements":[{"kind":0,"literal":"eval","group":-1}],"samples":2},` +
		`{"family":"Angler","elements":[{"kind":0,"literal":"unescape","group":-1}],"samples":2},` +
		`{"family":"Nuclear","elements":[{"kind":0,"literal":"iframe","group":-1}],"samples":3}]}`)
	f.Add([]byte(`{"version":4,"since":3,"delta":true,"families":["Angler","Nuclear"],"order":[0,0,1],"changed":{}}`))
	f.Add([]byte(`{"version":4,"since":3,"delta":true,"families":["Nuclear"],"order":[0],` +
		`"changed":{"Nuclear":[{"family":"Nuclear","elements":[{"kind":0,"literal":"embed","group":-1}],"samples":1}]}}`))
	f.Add([]byte(`{"version":4,"since":2,"delta":true}`))
	f.Add([]byte(`{"version":4,"since":3,"delta":true,"families":["Angler"],"order":[-1]}`))
	f.Add([]byte(`{"version":4,"since":3,"delta":true,"families":["Angler"],"order":[0,0,0,0,0,0,0]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, body []byte) {
		var prev Snapshot
		if err := json.Unmarshal(prevJSON, &prev); err != nil {
			t.Fatal(err)
		}
		var d Delta
		if err := json.Unmarshal(body, &d); err != nil {
			return
		}
		snap, err := d.Apply(prev)
		if err != nil {
			return
		}
		if len(snap.Signatures) != len(d.Order) {
			t.Fatalf("applied snapshot has %d signatures for %d order slots", len(snap.Signatures), len(d.Order))
		}
		if snap.Version != d.Version {
			t.Fatalf("applied snapshot v%d, delta v%d", snap.Version, d.Version)
		}
		if _, err := json.Marshal(snap); err != nil {
			t.Fatalf("applied snapshot does not re-serialize: %v", err)
		}
	})
}

// FuzzAttestation fuzzes both attacker-reachable surfaces of the
// certification layer with one input. As wire bytes: an attestation
// document a strict client decodes comes off the network, so decode +
// MAC verification must never panic, verification of arbitrary bytes
// must never succeed against a re-signed record's key spuriously, and a
// decoded record re-signed under a key must always verify under that
// key. As disk bytes: the audit log is the only store file whose
// corruption must never fail Open — whatever prefix survives must be a
// valid hash chain, and the recovered log must accept chained appends.
func FuzzAttestation(f *testing.F) {
	f.Add([]byte(`{"version":1,"corpusDigest":"aa","setDigest":"bb","primary":{"mode":"fleet","shards":2,"dispatch":"stream","affinity":true},"verify":{"mode":"in-process","dispatch":"batch","seed":7},"time":"2026-08-08T00:00:00Z","mac":"00ff"}`))
	f.Add([]byte(`{"version":-1,"mac":"zz-not-hex"}`))
	f.Add([]byte(`{"seq":1,"kind":"attest","attestation":{"version":1},"sum":"deadbeef"}` + "\n"))
	f.Add([]byte(`{"seq":1,"kind":"quarantine","sum":""}` + "\n{truncated"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		key := []byte("fuzz-certification-key")
		var att Attestation
		if json.Unmarshal(data, &att) == nil {
			_ = att.VerifyMAC(key) // must not panic on arbitrary field values
			att.MAC = att.Sign(key)
			if !att.VerifyMAC(key) {
				t.Fatal("self-signed attestation fails verification")
			}
			if att.VerifyMAC([]byte("a-different-key")) {
				t.Fatal("attestation verifies under the wrong key")
			}
		}

		path := filepath.Join(t.TempDir(), "sigs.json")
		if err := os.WriteFile(path+".audit", data, 0o644); err != nil {
			t.Fatal(err)
		}
		store, err := Open(path)
		if err != nil {
			t.Fatalf("Open must tolerate any audit-log bytes: %v", err)
		}
		prev := ""
		for i, rec := range store.AuditRecords() {
			if err := rec.checkChain(int64(i+1), prev); err != nil {
				t.Fatalf("recovered prefix is not a valid chain: %v", err)
			}
			prev = rec.Sum
		}
		if err := store.RecordQuarantine(Quarantine{Reason: "fuzz append"}); err != nil {
			t.Fatalf("recovered log rejects appends: %v", err)
		}
		reopened, err := Open(path)
		if err != nil {
			t.Fatalf("reopen after recovery+append: %v", err)
		}
		if got, want := len(reopened.AuditRecords()), len(store.AuditRecords()); got != want {
			t.Fatalf("reopen kept %d records, want %d", got, want)
		}
	})
}
