package sigdb

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kizzle"
	"kizzle/synth"
)

// watchSigs trains a real signature set for the given revision; distinct
// revisions train on distinct days, so successive publishes change bytes.
func watchSigs(t *testing.T, rev int) []kizzle.Signature {
	t.Helper()
	return trainSignatures(t, synth.Date(time.August, 5+rev))
}

// watchServer mounts the store the way sigserve does: /signatures for
// polling, /signatures/watch for push.
func watchServer(s *Store, wait time.Duration) *httptest.Server {
	mux := http.NewServeMux()
	mux.Handle("/signatures", s.Handler())
	mux.Handle("/signatures/watch", s.watchHandler(wait))
	return httptest.NewServer(mux)
}

// TestWatchPushImmediate is the core push property: replicas parked on
// the watch endpoint learn about a publish without waiting any poll
// interval, and what they deploy is byte-identical to the store's
// snapshot.
func TestWatchPushImmediate(t *testing.T) {
	store := New()
	if _, err := store.Replace(watchSigs(t, 0), nil); err != nil {
		t.Fatal(err)
	}
	srv := watchServer(store, 30*time.Second)
	defer srv.Close()

	const replicas = 3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type applied struct {
		mu    sync.Mutex
		snaps []Snapshot
	}
	got := make([]applied, replicas)
	var wg sync.WaitGroup
	var ready sync.WaitGroup
	for i := 0; i < replicas; i++ {
		c := &Client{URL: srv.URL + "/signatures", JitterSeed: int64(i) + 1}
		// Arm each replica first so the publish finds all of them parked.
		if _, ok, err := c.Fetch(ctx); err != nil || !ok {
			t.Fatalf("replica %d initial fetch: ok=%v err=%v", i, ok, err)
		}
		wg.Add(1)
		ready.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			var once sync.Once
			go func() { time.Sleep(50 * time.Millisecond); once.Do(ready.Done) }()
			// Poll interval is an hour: any update that arrives arrived by
			// push, not by the polling fallback.
			c.Run(ctx, time.Hour, func(snap Snapshot) {
				got[i].mu.Lock()
				got[i].snaps = append(got[i].snaps, snap)
				got[i].mu.Unlock()
			}, nil)
		}(i, c)
	}
	ready.Wait()

	if _, err := store.Replace(watchSigs(t, 1), nil); err != nil {
		t.Fatal(err)
	}
	want := store.Snapshot()

	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < replicas; i++ {
		for {
			got[i].mu.Lock()
			n := len(got[i].snaps)
			got[i].mu.Unlock()
			if n > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never saw the pushed update", i)
			}
			time.Sleep(5 * time.Millisecond)
		}
		got[i].mu.Lock()
		snap := got[i].snaps[0]
		got[i].mu.Unlock()
		if !reflect.DeepEqual(snap, want) {
			t.Errorf("replica %d deployed a different snapshot than the store holds", i)
		}
	}
	cancel()
	wg.Wait()
}

// TestWatchHandlerImmediateWhenBehind pins the non-blocking path: a
// watcher behind the store is answered at once with the normal wire
// format (delta included when smaller and asked for).
func TestWatchHandlerImmediateWhenBehind(t *testing.T) {
	store := New()
	if _, err := store.Replace(watchSigs(t, 0), nil); err != nil {
		t.Fatal(err)
	}
	h := store.watchHandler(30 * time.Second)
	rec := httptest.NewRecorder()
	start := time.Now()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/signatures/watch?since=0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("behind watcher blocked %v", elapsed)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 {
		t.Fatalf("got version %d, want 1", snap.Version)
	}
	if rec.Header().Get("ETag") != versionETag(1) {
		t.Fatalf("etag %q", rec.Header().Get("ETag"))
	}
}

// TestWatchHandlerHeartbeat pins the park bound: a current watcher gets
// 304 after maxWait, carrying the current ETag.
func TestWatchHandlerHeartbeat(t *testing.T) {
	store := New()
	if _, err := store.Replace(watchSigs(t, 0), nil); err != nil {
		t.Fatal(err)
	}
	h := store.watchHandler(30 * time.Millisecond)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/signatures/watch?since=1", nil))
	if rec.Code != http.StatusNotModified {
		t.Fatalf("status %d, want 304", rec.Code)
	}
	if rec.Header().Get("ETag") != versionETag(1) {
		t.Fatalf("etag %q", rec.Header().Get("ETag"))
	}
}

// TestWatchHandlerBadRequest pins parameter validation.
func TestWatchHandlerBadRequest(t *testing.T) {
	store := New()
	h := store.WatchHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/signatures/watch?since=banana", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/signatures/watch", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", rec.Code)
	}
}

// TestWatchReconnectAfterDrop drops the first watch connections with 500
// and requires the client to retry (with backoff) and still deliver the
// pushed update once the endpoint heals.
func TestWatchReconnectAfterDrop(t *testing.T) {
	store := New()
	if _, err := store.Replace(watchSigs(t, 0), nil); err != nil {
		t.Fatal(err)
	}
	var failures atomic.Int64
	watch := store.watchHandler(30 * time.Second)
	mux := http.NewServeMux()
	mux.Handle("/signatures", store.Handler())
	mux.HandleFunc("/signatures/watch", func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		watch.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := &Client{URL: srv.URL + "/signatures", JitterSeed: 7}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, ok, err := c.Fetch(ctx); err != nil || !ok {
		t.Fatalf("initial fetch: ok=%v err=%v", ok, err)
	}

	updates := make(chan Snapshot, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx, time.Hour, func(snap Snapshot) { updates <- snap }, nil)
	}()

	// Give the client time to burn through the failing rounds, then
	// publish while it is parked on the healed endpoint.
	for failures.Load() < 3 {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if _, err := store.Replace(watchSigs(t, 1), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case snap := <-updates:
		if snap.Version != 2 {
			t.Fatalf("got version %d, want 2", snap.Version)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("update never arrived after watch stream drops")
	}
	if c.Metrics()["watch_drops"].(int64) < 2 {
		t.Errorf("watch_drops = %v, want >= 2", c.Metrics()["watch_drops"])
	}
	cancel()
	<-done
}

// TestWatchPacesEagerServer pins the anti-busy-loop floor: an endpoint
// that answers every watch round immediately with 304 (an intermediary,
// a non-store implementation — no server-side park at all) must see
// paced reconnects, not a tight request loop.
func TestWatchPacesEagerServer(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotModified)
	}))
	defer srv.Close()

	c := &Client{URL: srv.URL + "/signatures", JitterSeed: 5, WatchMinRound: 20 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	c.Run(ctx, time.Hour, func(Snapshot) {}, nil)

	// ~12 paced rounds fit in 250ms at a 20ms floor; an unpaced loop
	// against a local immediate responder would make thousands.
	if n := calls.Load(); n > 30 {
		t.Fatalf("eager 304 endpoint saw %d watch rounds in 250ms; pacing failed", n)
	}
	if c.Metrics()["watch_paced"].(int64) == 0 {
		t.Error("watch_paced = 0, want > 0")
	}
}

// TestWatchFallsBackToPolling pins the unsupported-endpoint path: against
// a server with only the poll endpoint, Run degrades to Poll and still
// delivers updates at poll cadence.
func TestWatchFallsBackToPolling(t *testing.T) {
	store := New()
	if _, err := store.Replace(watchSigs(t, 0), nil); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/signatures", store.Handler()) // no /signatures/watch
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := &Client{URL: srv.URL + "/signatures", JitterSeed: 11}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, ok, err := c.Fetch(ctx); err != nil || !ok {
		t.Fatalf("initial fetch: ok=%v err=%v", ok, err)
	}
	if _, err := store.Replace(watchSigs(t, 1), nil); err != nil {
		t.Fatal(err)
	}

	updates := make(chan Snapshot, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx, 20*time.Millisecond, func(snap Snapshot) { updates <- snap }, nil)
	}()
	select {
	case snap := <-updates:
		if snap.Version != 2 {
			t.Fatalf("got version %d, want 2", snap.Version)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("polling fallback never delivered the update")
	}
	if c.Metrics()["watch_fallback"].(int64) != 1 {
		t.Errorf("watch_fallback = %v, want 1", c.Metrics()["watch_fallback"])
	}
	if c.Metrics()["watch_updates"].(int64) != 0 {
		t.Errorf("watch_updates = %v, want 0 (update came via polling)", c.Metrics()["watch_updates"])
	}
	cancel()
	<-done
}

// TestWatchTickReconnects pins the heartbeat loop: a server park bound
// shorter than the test means several 304 ticks, each reconnecting, and
// an update published mid-stream still lands.
func TestWatchTickReconnects(t *testing.T) {
	store := New()
	if _, err := store.Replace(watchSigs(t, 0), nil); err != nil {
		t.Fatal(err)
	}
	srv := watchServer(store, 15*time.Millisecond)
	defer srv.Close()

	// A sub-floor WatchMinRound keeps the deliberately fast heartbeats of
	// this test from being paced (pacing itself is pinned separately).
	c := &Client{URL: srv.URL + "/signatures", JitterSeed: 3, WatchMinRound: -1}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, ok, err := c.Fetch(ctx); err != nil || !ok {
		t.Fatalf("initial fetch: ok=%v err=%v", ok, err)
	}
	updates := make(chan Snapshot, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx, time.Hour, func(snap Snapshot) { updates <- snap }, nil)
	}()
	// Let a few heartbeat rounds pass, then publish.
	for c.Metrics()["watch_ticks"].(int64) < 3 {
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := store.Replace(watchSigs(t, 1), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case snap := <-updates:
		if snap.Version != 2 {
			t.Fatalf("got version %d, want 2", snap.Version)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("update never arrived across heartbeat reconnects")
	}
	cancel()
	<-done
}
