package sigdb

import (
	"encoding/json"
	"fmt"

	"kizzle"
	"kizzle/internal/contentcache"
	"kizzle/internal/zerocopy"
)

// deltaHistory bounds how many past versions the store keeps family
// digests for. A replica further behind than this falls back to a full
// snapshot — correctness never depends on history depth.
const deltaHistory = 32

// Delta is the wire form of a per-family incremental update: only the
// families whose signature lists changed since the client's version are
// carried in full; everything else is reconstructed from the snapshot the
// client already holds. Families, Order, and Changed together pin the
// exact interleaving of the new full signature list, so Apply rebuilds it
// byte-identically — a delta-updated replica compiles exactly the matcher
// a full download would have produced. Multi signatures ride along whole
// (the multi set is small; per-part deltas would not pay).
type Delta struct {
	// Version is the store version this delta brings the client to.
	Version int64 `json:"version"`
	// Since is the client version the delta applies on top of.
	Since int64 `json:"since"`
	// IsDelta marks the response as a delta; full Snapshot JSON has no
	// "delta" key, which is how clients tell the two apart.
	IsDelta bool `json:"delta"`
	// Families lists every family of the new snapshot in first-appearance
	// order of the full signature list.
	Families []string `json:"families"`
	// Order holds, per signature position of the full list, the index
	// into Families of the signature at that position.
	Order []int `json:"order"`
	// Changed maps each family whose list changed since Since (including
	// families that are new) to its full ordered signature list.
	Changed map[string][]kizzle.Signature `json:"changed"`
	// Multi is the complete multi-sequence set of the new snapshot.
	Multi []kizzle.MultiSignature `json:"multi,omitempty"`
}

// familyDigests maps each family to a digest of its ordered signature
// list, in serialized form — the bytes consumers deploy, so any change a
// client could observe changes the digest.
func familyDigests(sigs []kizzle.Signature) (map[string]uint64, error) {
	byFam := make(map[string][]kizzle.Signature)
	for _, sig := range sigs {
		byFam[sig.Family()] = append(byFam[sig.Family()], sig)
	}
	out := make(map[string]uint64, len(byFam))
	for fam, list := range byFam {
		data, err := json.Marshal(list)
		if err != nil {
			return nil, fmt.Errorf("sigdb: digest family %s: %w", fam, err)
		}
		out[fam] = contentcache.Digest(zerocopy.String(data))
	}
	return out, nil
}

// recordHistoryLocked stores the current snapshot's family digests and
// prunes entries beyond the history window. Caller holds s.mu; digest
// failures just skip the entry (deltas become unavailable for this
// version, full snapshots still serve).
func (s *Store) recordHistoryLocked() {
	digests, err := familyDigests(s.snap.Signatures)
	if err != nil {
		return
	}
	if s.history == nil {
		s.history = make(map[int64]map[string]uint64)
	}
	s.history[s.snap.Version] = digests
	for v := range s.history {
		if v <= s.snap.Version-deltaHistory {
			delete(s.history, v)
		}
	}
}

// snapshotAndDelta returns the current snapshot and, when family-digest
// history for since is available, the delta from since to it — both read
// under one lock so they describe the same version.
func (s *Store) snapshotAndDelta(since int64) (Snapshot, *Delta) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := Snapshot{
		Version:    s.snap.Version,
		Signatures: append([]kizzle.Signature(nil), s.snap.Signatures...),
		Multi:      append([]kizzle.MultiSignature(nil), s.snap.Multi...),
	}
	if since <= 0 || since >= snap.Version {
		return snap, nil
	}
	old, ok := s.history[since]
	cur := s.history[snap.Version]
	if !ok || cur == nil {
		return snap, nil
	}
	d := &Delta{
		Version: snap.Version,
		Since:   since,
		IsDelta: true,
		Changed: make(map[string][]kizzle.Signature),
	}
	famIndex := make(map[string]int)
	for _, sig := range snap.Signatures {
		fam := sig.Family()
		i, seen := famIndex[fam]
		if !seen {
			i = len(d.Families)
			famIndex[fam] = i
			d.Families = append(d.Families, fam)
			if old[fam] != cur[fam] {
				d.Changed[fam] = nil
			}
		}
		d.Order = append(d.Order, i)
		if _, changed := d.Changed[fam]; changed {
			d.Changed[fam] = append(d.Changed[fam], sig)
		}
	}
	d.Multi = snap.Multi
	return snap, d
}

// Apply reconstructs the full snapshot a delta describes from the
// snapshot the client retained at d.Since. Any inconsistency (wrong base
// version, count mismatches, malformed indices) returns an error; the
// caller falls back to a full fetch rather than deploying a guess.
func (d Delta) Apply(prev Snapshot) (Snapshot, error) {
	if prev.Version != d.Since {
		return Snapshot{}, fmt.Errorf("sigdb: delta applies to v%d, have v%d", d.Since, prev.Version)
	}
	prevByFam := make(map[string][]kizzle.Signature)
	for _, sig := range prev.Signatures {
		prevByFam[sig.Family()] = append(prevByFam[sig.Family()], sig)
	}
	source := func(fam string) []kizzle.Signature {
		if list, ok := d.Changed[fam]; ok {
			return list
		}
		return prevByFam[fam]
	}
	pos := make(map[string]int, len(d.Families))
	sigs := make([]kizzle.Signature, 0, len(d.Order))
	for _, oi := range d.Order {
		if oi < 0 || oi >= len(d.Families) {
			return Snapshot{}, fmt.Errorf("sigdb: delta order index %d out of range", oi)
		}
		fam := d.Families[oi]
		src := source(fam)
		k := pos[fam]
		if k >= len(src) {
			return Snapshot{}, fmt.Errorf("sigdb: delta wants %d+ signatures for %s, base has %d", k+1, fam, len(src))
		}
		sigs = append(sigs, src[k])
		pos[fam] = k + 1
	}
	for _, fam := range d.Families {
		if pos[fam] != len(source(fam)) {
			return Snapshot{}, fmt.Errorf("sigdb: delta consumed %d of %d signatures for %s", pos[fam], len(source(fam)), fam)
		}
	}
	return Snapshot{Version: d.Version, Signatures: sigs, Multi: d.Multi}, nil
}
