package kizzle_test

import (
	"encoding/json"
	"testing"
	"time"

	"kizzle"
	"kizzle/internal/ekit"
	"kizzle/synth"
)

func newSeededOracle(day int) *kizzle.Oracle {
	o := kizzle.NewOracle()
	for _, fam := range synth.Kits() {
		o.AddKnown(fam.String(), synth.Payload(fam, day-1))
	}
	return o
}

func TestOracleDetectsKits(t *testing.T) {
	day := august(10)
	o := newSeededOracle(day)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 0
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream.Day(day) {
		v := o.Inspect(s.Content)
		if !v.Detected {
			t.Errorf("%s (%v): oracle missed, best %q at %.2f", s.ID, s.Family, v.Family, v.Overlap)
			continue
		}
		if v.Family != s.Family.String() {
			t.Errorf("%s: oracle labeled %q, truth %v", s.ID, v.Family, s.Family)
		}
		if !v.Unpacked {
			t.Errorf("%s: oracle should have unpacked a kit sample", s.ID)
		}
	}
}

func TestOraclePassesBenign(t *testing.T) {
	day := august(10)
	o := newSeededOracle(day)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 120
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := 0
	total := 0
	for _, s := range stream.Day(day) {
		if s.Family != synth.Benign {
			continue
		}
		total++
		if o.Inspect(s.Content).Detected {
			fp++
		}
	}
	if fp > total/50 {
		t.Errorf("oracle flagged %d/%d benign samples", fp, total)
	}
}

// TestOracleSurvivesPackerSwap is the point of the extension: an attacker
// who borrows a rival kit's packer (code borrowing, §II-B) defeats every
// structural signature trained on the old packed form, but the oracle
// still recognizes the inner payload.
func TestOracleSurvivesPackerSwap(t *testing.T) {
	day := august(10)

	// Train packed-form signatures on normal Nuclear traffic.
	c := newSeededCompiler(t, day)
	res, err := c.Process(daySamples(t, day, 60))
	if err != nil {
		t.Fatal(err)
	}
	var nuclearSigs []kizzle.Signature
	for _, sig := range res.Signatures {
		if sig.Family() == "Nuclear" {
			nuclearSigs = append(nuclearSigs, sig)
		}
	}
	if len(nuclearSigs) == 0 {
		t.Fatal("no Nuclear signatures")
	}
	m, err := kizzle.NewMatcher(nuclearSigs)
	if err != nil {
		t.Fatal(err)
	}

	// The attacker re-wraps tomorrow's Nuclear payload in RIG's packer.
	payload := ekit.Payload(ekit.FamilyNuclear, day+1)
	swapped := ekit.PackRIG(payload, day+1, 0)

	if m.Detects(swapped) {
		t.Fatal("structural Nuclear signatures should not survive a packer swap")
	}
	v := newSeededOracle(day + 1).Inspect(swapped)
	if !v.Detected || v.Family != "Nuclear" {
		t.Errorf("oracle verdict = %+v, want Nuclear detection through the borrowed packer", v)
	}
}

func TestOracleUnseeded(t *testing.T) {
	o := kizzle.NewOracle()
	v := o.Inspect("var x = 1;")
	if v.Detected || v.Family != "" {
		t.Errorf("unseeded oracle verdict = %+v", v)
	}
}

func TestSignatureJSONRoundTrip(t *testing.T) {
	day := august(5)
	c := newSeededCompiler(t, day)
	res, err := c.Process(daySamples(t, day, 80))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Signatures) == 0 {
		t.Fatal("no signatures")
	}
	data, err := json.Marshal(res.Signatures)
	if err != nil {
		t.Fatal(err)
	}
	var restored []kizzle.Signature
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(res.Signatures) {
		t.Fatalf("restored %d signatures, want %d", len(restored), len(res.Signatures))
	}
	for i := range restored {
		if restored[i].Regex() != res.Signatures[i].Regex() {
			t.Errorf("signature %d regex changed across round trip", i)
		}
	}
	// The restored set must compile and behave identically.
	m1, err := kizzle.NewMatcher(res.Signatures)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := kizzle.NewMatcher(restored)
	if err != nil {
		t.Fatal(err)
	}
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 20
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream.Day(day + 1) {
		if m1.Detects(s.Content) != m2.Detects(s.Content) {
			t.Fatalf("restored matcher disagrees on %s", s.ID)
		}
	}
}

func TestGenerateMultiPublicAPI(t *testing.T) {
	day := synth.Date(time.August, 5)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 0
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	for _, s := range stream.Day(day) {
		if s.Family == synth.Angler {
			docs = append(docs, s.Content)
		}
	}
	if len(docs) < 3 {
		t.Fatal("not enough Angler samples")
	}
	multi, err := kizzle.GenerateMulti("Angler", docs, kizzle.WithQuorum(2, 3), kizzle.WithMultiSlack(2))
	if err != nil {
		t.Fatal(err)
	}
	if multi.Parts() < 1 || multi.Family() != "Angler" {
		t.Fatalf("multi = %d parts family %q", multi.Parts(), multi.Family())
	}
	if multi.MinParts() > multi.Parts() {
		t.Errorf("quorum %d exceeds parts %d", multi.MinParts(), multi.Parts())
	}

	mm, err := kizzle.NewMultiMatcher([]kizzle.MultiSignature{multi})
	if err != nil {
		t.Fatal(err)
	}
	hit := 0
	var next []string
	for _, s := range stream.Day(day + 1) {
		if s.Family == synth.Angler {
			next = append(next, s.Content)
		}
	}
	for _, d := range next {
		if mm.Detects(d) {
			hit++
		}
	}
	if hit < len(next)*3/4 {
		t.Errorf("multi matcher hit %d/%d next-day Angler", hit, len(next))
	}
	if mm.Detects(`var benign = document.title;`) {
		t.Error("multi matcher flagged benign")
	}

	// JSON round trip for multi-signatures.
	data, err := json.Marshal(multi)
	if err != nil {
		t.Fatal(err)
	}
	var restored kizzle.MultiSignature
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Regex() != multi.Regex() || restored.MinParts() != multi.MinParts() {
		t.Error("multi-signature JSON round trip changed the signature")
	}
	if _, err := kizzle.NewMultiMatcher([]kizzle.MultiSignature{restored}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateMultiErrors(t *testing.T) {
	if _, err := kizzle.GenerateMulti("X", nil); err == nil {
		t.Error("expected error for empty docs")
	}
	if _, err := kizzle.GenerateMulti("X", []string{"a;", "function f(){}"}); err == nil {
		t.Error("expected error for structurally disjoint docs")
	}
	var bad kizzle.MultiSignature
	if _, err := kizzle.NewMultiMatcher([]kizzle.MultiSignature{bad}); err == nil {
		t.Error("expected compile error for zero-value multi-signature")
	}
}
