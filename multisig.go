package kizzle

import (
	"encoding/json"
	"errors"
	"fmt"

	"kizzle/internal/jstoken"
	"kizzle/internal/siggen"
	"kizzle/internal/sigmatch"
)

// MultiSignature is the §V extension to plain signatures: several shorter
// ordered token runs with flexible gaps and a matching quorum, robust
// against attackers who spray superfluous statements between the packer's
// real operations to break any single long run.
type MultiSignature struct {
	inner siggen.MultiSignature
}

// Family returns the kit the signature detects.
func (m MultiSignature) Family() string { return m.inner.Family }

// Parts returns the number of runs.
func (m MultiSignature) Parts() int { return len(m.inner.Parts) }

// MinParts returns the matching quorum (0 = all parts).
func (m MultiSignature) MinParts() int { return m.inner.MinParts }

// TokenLength is the summed token length of all parts.
func (m MultiSignature) TokenLength() int { return m.inner.TokenLength() }

// Regex renders the signature with non-greedy gaps between parts.
func (m MultiSignature) Regex() string { return m.inner.Regex() }

// MarshalJSON serializes the signature for storage/distribution.
func (m MultiSignature) MarshalJSON() ([]byte, error) { return json.Marshal(m.inner) }

// UnmarshalJSON restores a serialized signature; validity is checked when
// it is compiled into a matcher.
func (m *MultiSignature) UnmarshalJSON(data []byte) error {
	return json.Unmarshal(data, &m.inner)
}

// MultiOption configures GenerateMulti.
type MultiOption func(*siggen.MultiConfig)

// WithMaxParts caps the number of runs collected (default 6).
func WithMaxParts(n int) MultiOption {
	return func(c *siggen.MultiConfig) { c.MaxParts = n }
}

// WithPartTokens sets the per-part minimum and overall maximum run length.
func WithPartTokens(min, max int) MultiOption {
	return func(c *siggen.MultiConfig) { c.MinTokens = min; c.MaxTokens = max }
}

// WithQuorum sets the matching quorum as a fraction num/den of the
// collected parts (default 2/3).
func WithQuorum(num, den int) MultiOption {
	return func(c *siggen.MultiConfig) { c.QuorumNum, c.QuorumDen = num, den }
}

// WithMultiSlack widens class length bounds like WithSignatureSlack.
func WithMultiSlack(n int) MultiOption {
	return func(c *siggen.MultiConfig) { c.LengthSlack = n }
}

// ErrNoMultiSignature is returned when no qualifying part set exists.
var ErrNoMultiSignature = errors.New("kizzle: no multi-sequence signature found")

// GenerateMulti builds a multi-sequence signature directly from the
// documents of one malicious cluster (obtained e.g. from
// Result.Clusters[i].SampleIDs).
func GenerateMulti(family string, docs []string, opts ...MultiOption) (MultiSignature, error) {
	cfg := siggen.DefaultMultiConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	samples := make([][]jstoken.Token, len(docs))
	for i, d := range docs {
		samples[i] = jstoken.LexDocument(d)
	}
	inner, err := siggen.GenerateMulti(family, samples, cfg)
	if err != nil {
		if errors.Is(err, siggen.ErrNoCommonRun) || errors.Is(err, siggen.ErrNoSamples) {
			return MultiSignature{}, ErrNoMultiSignature
		}
		return MultiSignature{}, fmt.Errorf("kizzle: generate multi: %w", err)
	}
	return MultiSignature{inner: inner}, nil
}

// MultiMatcher is a deployed set of multi-sequence signatures.
type MultiMatcher struct {
	sigs []*sigmatch.CompiledMulti
}

// NewMultiMatcher compiles the signatures for scanning.
func NewMultiMatcher(sigs []MultiSignature) (*MultiMatcher, error) {
	m := &MultiMatcher{sigs: make([]*sigmatch.CompiledMulti, 0, len(sigs))}
	for i, s := range sigs {
		c, err := sigmatch.CompileMulti(s.inner)
		if err != nil {
			return nil, fmt.Errorf("kizzle: multi-signature %d: %w", i, err)
		}
		m.sigs = append(m.sigs, c)
	}
	return m, nil
}

// Scan returns the families of all matching signatures.
func (m *MultiMatcher) Scan(doc string) []string {
	tokens := jstoken.LexDocument(doc)
	var out []string
	seen := make(map[string]bool)
	for _, c := range m.sigs {
		if _, ok := c.MatchTokens(tokens); ok && !seen[c.Family()] {
			seen[c.Family()] = true
			out = append(out, c.Family())
		}
	}
	return out
}

// Detects reports whether any signature matches.
func (m *MultiMatcher) Detects(doc string) bool {
	tokens := jstoken.LexDocument(doc)
	for _, c := range m.sigs {
		if _, ok := c.MatchTokens(tokens); ok {
			return true
		}
	}
	return false
}
