# Developer entry points. CI runs the same targets (see
# .github/workflows/ci.yml), so a green `make check bench-gate` locally
# means a green PR.

GOFLAGS ?= -trimpath
export GOFLAGS

.PHONY: build test race vet fmt docs check bench-gate bench-baseline bench-pr-snapshot fuzz-smoke cover

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

docs:
	sh scripts/checkdocs.sh

check: fmt vet docs build test

# Run the bench smoke set (-count=5 medians) and fail on >25% regression
# against the committed BENCH_BASELINE.json; writes BENCH_CURRENT.json
# for inspection/artifact upload.
bench-gate:
	sh scripts/benchgate.sh gate

# Refresh the committed baseline after an intentional perf change —
# commit the resulting BENCH_BASELINE.json with the change that moved it.
bench-baseline:
	sh scripts/benchgate.sh baseline

# Freeze this PR's numbers into a trajectory snapshot, e.g.
# `make bench-pr-snapshot SNAPSHOT=BENCH_PR5.json`.
SNAPSHOT ?= BENCH_PR4.json
bench-pr-snapshot:
	sh scripts/benchgate.sh snapshot $(SNAPSHOT)

# 30-second fuzz runs of the untrusted-input surfaces; crashes fail,
# time-box does not (the CI fuzz smoke).
FUZZTIME ?= 30s
fuzz-smoke:
	go test -run=NONE -fuzz='^FuzzWorkerPartition$$' -fuzztime=$(FUZZTIME) ./internal/shardcoord/
	go test -run=NONE -fuzz='^FuzzWorkerEdges$$' -fuzztime=$(FUZZTIME) ./internal/shardcoord/
	go test -run=NONE -fuzz='^FuzzWorkerEdgesV3$$' -fuzztime=$(FUZZTIME) ./internal/shardcoord/
	go test -run=NONE -fuzz='^FuzzLoadSegment$$' -fuzztime=$(FUZZTIME) ./internal/contentcache/
	go test -run=NONE -fuzz='^FuzzSignaturesPost$$' -fuzztime=$(FUZZTIME) ./sigdb/
	go test -run=NONE -fuzz='^FuzzDeltaSignatures$$' -fuzztime=$(FUZZTIME) ./sigdb/
	go test -run=NONE -fuzz='^FuzzAttestation$$' -fuzztime=$(FUZZTIME) ./sigdb/
	go test -run=NONE -fuzz='^FuzzKnownDir$$' -fuzztime=$(FUZZTIME) ./cmd/sigserve/
	go test -run=NONE -fuzz='^FuzzSampleDir$$' -fuzztime=$(FUZZTIME) ./cmd/sigserve/
	go test -run=NONE -fuzz='^FuzzWebkitTokenize$$' -fuzztime=$(FUZZTIME) ./internal/webkittoken/

# Coverage with a ratcheting floor (scripts/covergate.sh); writes
# coverage.out for `go tool cover -html`.
cover:
	sh scripts/covergate.sh
