package kizzle_test

import (
	"math/rand"
	"strings"
)

// newJunkRand and junkStatement support the junk-insertion ablation and
// the sharded-clustering benchmark's workload generator.
func newJunkRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// junkVariant sprays random statements between a document's statements
// with probability rate per boundary, yielding structurally distinct (yet
// related) token sequences — the attacker mutation of §V, reused as a
// generator of clustering-heavy workloads.
func junkVariant(doc string, seed int64, rate float64) string {
	rng := newJunkRand(seed)
	stmts := strings.SplitAfter(doc, ";")
	var sb strings.Builder
	for _, s := range stmts {
		sb.WriteString(s)
		if rng.Float64() < rate {
			sb.WriteString(junkStatement(rng))
		}
	}
	return sb.String()
}

func junkStatement(rng *rand.Rand) string {
	ident := func() string {
		const chars = "abcdefghijklmnopqrstuvwxyz"
		b := make([]byte, 3+rng.Intn(5))
		for i := range b {
			b[i] = chars[rng.Intn(len(chars))]
		}
		return string(b)
	}
	num := func() string {
		return string([]byte{byte('1' + rng.Intn(9)), byte('0' + rng.Intn(10))})
	}
	switch rng.Intn(5) {
	case 0:
		return "var " + ident() + "=" + ident() + "(" + num() + ");"
	case 1:
		return ident() + "++;"
	case 2:
		return "if(" + ident() + "){" + ident() + "=" + num() + ";}"
	case 3:
		return "var " + ident() + "=[" + num() + "," + num() + "];"
	default:
		return "while(false){" + ident() + "();}"
	}
}
