package kizzle_test

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"kizzle"
	"kizzle/internal/ingest"
	"kizzle/internal/shardcoord"
)

// TestJSProfileIdentity pins the contract that makes the pluggable
// ingest seam invisible to every pre-profile artifact: the default
// profile is "js", its cache-kind offset is zero (historical cache
// snapshots stay valid), and the webkit profile occupies a disjoint
// offset so entries can never alias.
func TestJSProfileIdentity(t *testing.T) {
	js := ingest.Default()
	if js.ID() != "js" {
		t.Fatalf("default profile id = %q, want js", js.ID())
	}
	if js.KindOffset() != 0 {
		t.Fatalf("js KindOffset = %d, want 0 (cache snapshot compatibility)", js.KindOffset())
	}
	reg, ok := ingest.Lookup("js")
	if !ok || reg.ID() != js.ID() {
		t.Fatalf("registry lookup for js: ok=%v", ok)
	}
	wk, ok := ingest.Lookup("webkit")
	if !ok {
		t.Fatal("webkit profile not registered")
	}
	if wk.KindOffset() == 0 {
		t.Fatal("webkit KindOffset must be disjoint from js")
	}
	ids := kizzle.Profiles()
	want := map[string]bool{"js": false, "webkit": false}
	for _, id := range ids {
		if _, tracked := want[id]; tracked {
			want[id] = true
		}
	}
	for id, seen := range want {
		if !seen {
			t.Fatalf("Profiles() = %v missing %q", ids, id)
		}
	}
}

// TestJSProfileDifferential pins the explicit profile/js path
// byte-identical to the implicit pre-refactor default — signatures,
// cluster counts, and cache traffic — in-process and at 1, 2, and 4
// shards. Any divergence means the profile seam changed JS output.
func TestJSProfileDifferential(t *testing.T) {
	day := august(5)
	samples := daySamples(t, day, 60)

	run := func(t *testing.T, shards int, extra ...kizzle.Option) (string, kizzle.Stats) {
		t.Helper()
		opts := extra
		if shards > 0 {
			urls := make([]string, shards)
			for i := range urls {
				srv := httptest.NewServer(shardcoord.NewWorker().Handler())
				t.Cleanup(srv.Close)
				urls[i] = srv.URL
			}
			opts = append(opts, kizzle.WithShardWorkers(urls...))
		}
		c := newSeededCompiler(t, day, opts...)
		res, err := c.Process(samples)
		if err != nil {
			t.Fatal(err)
		}
		sigs, err := json.Marshal(res.Signatures)
		if err != nil {
			t.Fatal(err)
		}
		return string(sigs), res.Stats
	}

	refSigs, refStats := run(t, 0)
	if refStats.Clusters == 0 {
		t.Fatal("reference run produced no clusters")
	}
	for _, shards := range []int{0, 1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			implicitSigs, implicitStats := run(t, shards)
			explicitSigs, explicitStats := run(t, shards, kizzle.WithProfile("js"))
			if explicitSigs != implicitSigs {
				t.Fatal("WithProfile(js) signature bytes diverged from the implicit default")
			}
			if explicitSigs != refSigs {
				t.Fatal("sharded signature bytes diverged from the in-process reference")
			}
			if explicitStats.Clusters != implicitStats.Clusters ||
				explicitStats.MaliciousClusters != implicitStats.MaliciousClusters ||
				explicitStats.UniqueSequences != implicitStats.UniqueSequences {
				t.Fatalf("cluster stats diverged: explicit %+v implicit %+v", explicitStats, implicitStats)
			}
			if explicitStats.CacheHits != implicitStats.CacheHits ||
				explicitStats.CacheMisses != implicitStats.CacheMisses {
				t.Fatalf("cache traffic diverged: explicit %d/%d implicit %d/%d",
					explicitStats.CacheHits, explicitStats.CacheMisses,
					implicitStats.CacheHits, implicitStats.CacheMisses)
			}
		})
	}
}
