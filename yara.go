package kizzle

import (
	"fmt"
	"regexp"
	"strings"

	"kizzle/internal/siggen"
)

// YARA export: renders a deployed signature set as a YARA ruleset so the
// signatures Kizzle compiles can ride existing AV distribution channels
// (mail scanners, IR tooling) that consume YARA rather than the Figure 10
// regex dialect. The export is a deliberate over-approximation of the
// structural matcher in one place: YARA's regex engine has no
// back-references, so a KindBackref element is rendered as a repetition
// of the referenced group's character class and quantifier — every
// document the structural signature matches also matches the YARA rule,
// but a document whose two "captured" occurrences differ (within the
// class) matches only the YARA rule. Daily regeneration bounds the
// precision cost the same way it bounds class-length slack.

// ExportYARA renders the signature set as a YARA ruleset. Rule names are
// derived from family names (workload namespaces like "webkit/strato_v2"
// become "kizzle_webkit_strato_v2") with an index suffix keeping them
// unique; each rule carries the family, sample count, and token length
// as metadata. The output always passes ValidateYARA.
func ExportYARA(sigs []Signature) string {
	var sb strings.Builder
	sb.WriteString("// Kizzle structural signatures, YARA export.\n")
	sb.WriteString("// Back-references are over-approximated as class repetitions.\n\n")
	seen := make(map[string]int)
	for _, s := range sigs {
		name := yaraRuleName(s.inner.Family, seen)
		fmt.Fprintf(&sb, "rule %s\n{\n", name)
		sb.WriteString("    meta:\n")
		fmt.Fprintf(&sb, "        family = %q\n", s.inner.Family)
		fmt.Fprintf(&sb, "        samples = %d\n", s.inner.Samples)
		fmt.Fprintf(&sb, "        tokens = %d\n", s.TokenLength())
		sb.WriteString("    strings:\n")
		fmt.Fprintf(&sb, "        $sig = /%s/\n", yaraRegex(s.inner))
		sb.WriteString("    condition:\n        $sig\n}\n\n")
	}
	return sb.String()
}

// yaraRuleName sanitizes a family name into a unique YARA identifier.
func yaraRuleName(family string, seen map[string]int) string {
	var b strings.Builder
	b.WriteString("kizzle_")
	for i := 0; i < len(family); i++ {
		c := family[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	base := b.String()
	seen[base]++
	return fmt.Sprintf("%s_%d", base, seen[base])
}

// yaraRegex renders one signature's elements as a YARA-safe regex:
// literals escaped, classes with quantifiers, back-references replaced
// by the referenced group's class repetition (see the package-level
// over-approximation note).
func yaraRegex(sig siggen.Signature) string {
	groupClass := make(map[int]string)
	var sb strings.Builder
	for _, e := range sig.Elements {
		switch e.Kind {
		case siggen.KindLiteral:
			sb.WriteString(yaraEscape(regexp.QuoteMeta(e.Literal)))
		case siggen.KindClass:
			part := e.Class + yaraQuantifier(e.MinLen, e.MaxLen)
			if e.Group >= 0 {
				groupClass[e.Group] = part
			}
			sb.WriteString(part)
		case siggen.KindBackref:
			sb.WriteString(groupClass[e.Group])
		}
	}
	return sb.String()
}

func yaraQuantifier(minLen, maxLen int) string {
	if minLen == maxLen {
		return fmt.Sprintf("{%d}", minLen)
	}
	return fmt.Sprintf("{%d,%d}", minLen, maxLen)
}

// yaraEscape makes an already regex-quoted literal safe inside YARA's
// /.../ delimiters: forward slashes are escaped and line breaks become
// escape sequences (a YARA regex must sit on one line).
func yaraEscape(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '/':
			sb.WriteString(`\/`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// yaraIdent matches a valid YARA identifier.
var yaraIdent = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// ValidateYARA checks a ruleset for the structural syntax errors that
// would make a YARA engine reject the file: malformed or duplicate rule
// names, unterminated rule bodies, string entries that are not
// /regex/-style patterns on one line, missing condition sections, and
// conditions referencing undefined string identifiers. It is a minimal
// self-contained checker (no YARA engine ships in this repository), kept
// strict enough that ExportYARA output failing it is a bug.
func ValidateYARA(ruleset string) error {
	lines := strings.Split(ruleset, "\n")
	var (
		ruleName string
		inBody   bool
		section  string
		strIDs   map[string]bool
		hasCond  bool
		condRefs []string
		rules    = make(map[string]bool)
	)
	finish := func(line int) error {
		if !hasCond {
			return fmt.Errorf("yara: rule %q (ending line %d) has no condition section", ruleName, line)
		}
		for _, ref := range condRefs {
			if !strIDs[ref] {
				return fmt.Errorf("yara: rule %q condition references undefined string $%s", ruleName, ref)
			}
		}
		ruleName, inBody, section, hasCond = "", false, "", false
		strIDs, condRefs = nil, nil
		return nil
	}
	for n, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "rule "):
			if ruleName != "" {
				return fmt.Errorf("yara: line %d: rule %q is not closed before the next rule", n+1, ruleName)
			}
			name := strings.TrimSpace(strings.TrimPrefix(line, "rule "))
			name = strings.TrimSuffix(name, "{")
			name = strings.TrimSpace(name)
			if !yaraIdent.MatchString(name) {
				return fmt.Errorf("yara: line %d: invalid rule name %q", n+1, name)
			}
			if rules[name] {
				return fmt.Errorf("yara: line %d: duplicate rule name %q", n+1, name)
			}
			rules[name] = true
			ruleName = name
			strIDs = make(map[string]bool)
			inBody = strings.HasSuffix(line, "{")
		case line == "{":
			if ruleName == "" {
				return fmt.Errorf("yara: line %d: '{' outside a rule", n+1)
			}
			inBody = true
		case line == "}":
			if ruleName == "" || !inBody {
				return fmt.Errorf("yara: line %d: '}' outside a rule body", n+1)
			}
			if err := finish(n + 1); err != nil {
				return err
			}
		case line == "meta:", line == "strings:", line == "condition:":
			if !inBody {
				return fmt.Errorf("yara: line %d: section %q outside a rule body", n+1, line)
			}
			section = strings.TrimSuffix(line, ":")
			if section == "condition" {
				hasCond = true
			}
		default:
			if !inBody {
				return fmt.Errorf("yara: line %d: unexpected content outside a rule: %q", n+1, line)
			}
			switch section {
			case "meta":
				if !strings.Contains(line, "=") {
					return fmt.Errorf("yara: line %d: malformed meta entry %q", n+1, line)
				}
			case "strings":
				id, pat, ok := strings.Cut(line, "=")
				id, pat = strings.TrimSpace(id), strings.TrimSpace(pat)
				if !ok || !strings.HasPrefix(id, "$") || !yaraIdent.MatchString(id[1:]) {
					return fmt.Errorf("yara: line %d: malformed string entry %q", n+1, line)
				}
				if err := checkYARAPattern(pat); err != nil {
					return fmt.Errorf("yara: line %d: %w", n+1, err)
				}
				strIDs[id[1:]] = true
			case "condition":
				for _, f := range strings.Fields(line) {
					if strings.HasPrefix(f, "$") {
						condRefs = append(condRefs, strings.TrimRight(f[1:], ")"))
					}
				}
			default:
				return fmt.Errorf("yara: line %d: content before any section: %q", n+1, line)
			}
		}
	}
	if ruleName != "" {
		return fmt.Errorf("yara: rule %q is never closed", ruleName)
	}
	if len(rules) == 0 {
		return fmt.Errorf("yara: ruleset contains no rules")
	}
	return nil
}

// checkYARAPattern validates one strings-section pattern: a one-line
// /regex/ (escaped slashes allowed) or a quoted text string.
func checkYARAPattern(pat string) error {
	if len(pat) >= 2 && pat[0] == '"' {
		if pat[len(pat)-1] != '"' {
			return fmt.Errorf("unterminated text string %q", pat)
		}
		return nil
	}
	if len(pat) < 2 || pat[0] != '/' {
		return fmt.Errorf("malformed pattern %q", pat)
	}
	// Find the closing unescaped slash; modifiers (nocase etc.) may follow.
	for i := 1; i < len(pat); i++ {
		if pat[i] == '\\' {
			i++
			continue
		}
		if pat[i] == '/' {
			if i == 1 {
				return fmt.Errorf("empty regex %q", pat)
			}
			return nil
		}
	}
	return fmt.Errorf("unterminated regex %q", pat)
}
