// BenchmarkRecompile measures the publisher's recompilation loop on the
// day-over-day workload — the cost sigserve pays every -recompile tick.
package kizzle_test

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"kizzle"
	"kizzle/internal/contentcache"
	"kizzle/internal/ekit"
	"kizzle/internal/shardcoord"
)

// startCachedFleet launches n shard workers over loopback HTTP, each with
// its own pair-verdict cache — the configuration a kizzleshard fleet runs
// with -cachedir, where day N's clustering warms day N+1's.
func startCachedFleet(tb testing.TB, n int) []string {
	tb.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		w := shardcoord.NewWorker(shardcoord.WithWorkerCache(contentcache.New(32 << 20)))
		srv := httptest.NewServer(w.Handler())
		tb.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// recompileDays builds the publisher's day-over-day workload: day N, and a
// day N+1 whose distinct content overlaps day N's by ~85% (the Figure 11
// regime), both with observation multiplicity.
func recompileDays(b *testing.B) (day int, day1, day2 []kizzle.Sample) {
	b.Helper()
	const (
		benign    = 300
		dupFactor = 3
		overlap   = 0.85
	)
	day = ekit.Date(8, 9)
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = benign
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	distinct := func(d int) []kizzle.Sample {
		var out []kizzle.Sample
		for _, s := range stream.Day(d) {
			out = append(out, kizzle.Sample{ID: s.ID, Content: s.Content})
		}
		return out
	}
	day1d := distinct(day)
	nextd := distinct(day + 1)
	carried := int(float64(len(day1d)) * overlap)
	novel := len(day1d) - carried
	if novel > len(nextd) {
		b.Fatalf("next day has %d distinct docs, need %d novel", len(nextd), novel)
	}
	day2d := append(append([]kizzle.Sample(nil), day1d[:carried]...), nextd[:novel]...)
	replicate := func(distinct []kizzle.Sample) []kizzle.Sample {
		out := make([]kizzle.Sample, 0, len(distinct)*dupFactor)
		for r := 0; r < dupFactor; r++ {
			for _, s := range distinct {
				out = append(out, kizzle.Sample{ID: fmt.Sprintf("%s#%d", s.ID, r), Content: s.Content})
			}
		}
		return out
	}
	return day, replicate(day1d), replicate(day2d)
}

// seedRecompiler builds a compiler on the fixed corpus trajectory every
// variant shares: one payload per family, plus a duplicate RIG entry (the
// per-family generation bump a daily corpus feedback produces).
func seedRecompiler(b *testing.B, day int, opts ...kizzle.Option) *kizzle.Compiler {
	b.Helper()
	c := kizzle.New(opts...)
	for _, fam := range ekit.Families {
		c.AddKnown(fam.String(), ekit.Payload(fam, day-1))
	}
	c.AddKnown(ekit.FamilyRIG.String(), ekit.Payload(ekit.FamilyRIG, day-1))
	return c
}

// recompileOnce runs one publishing cycle: process the batch and build the
// deployable matcher through the per-family matcher cache.
func recompileOnce(b *testing.B, c *kizzle.Compiler, mc *kizzle.MatcherCache, batch []kizzle.Sample) *kizzle.Result {
	b.Helper()
	res, err := c.Process(batch)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := mc.Build(res.Signatures); err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkRecompile compares three publisher configurations on the
// day-over-day workload:
//
//   - full: a fresh compiler every recompile — the pre-PR5 sigserve
//     behavior (compileInto built a new compiler per tick), paying the
//     whole pipeline cold every time;
//   - incremental: one long-lived compiler whose content cache carries
//     day N into day N+1, in-process clustering — day N+1 pays only for
//     its novel ~15%;
//   - fleet: the same long-lived compiler with clustering dispatched to
//     two kizzleshard workers over real loopback HTTP (each with its own
//     verdict cache, as -cachedir fleets run), the sigserve -shards path.
//
// All three follow the identical corpus trajectory and their published
// signature sets are pinned byte-identical before timing starts; ns/op is
// the cost of the day N+1 recompile alone.
func BenchmarkRecompile(b *testing.B) {
	day, day1, day2 := recompileDays(b)

	fleetOpts := func(n int) []kizzle.Option {
		return []kizzle.Option{kizzle.WithShardWorkers(startCachedFleet(b, n)...)}
	}

	// Pin: every variant publishes the same bytes for both days.
	pin := func(opts ...kizzle.Option) (string, string) {
		c := seedRecompiler(b, day, opts...)
		var mc kizzle.MatcherCache
		r1 := recompileOnce(b, c, &mc, day1)
		r2 := recompileOnce(b, c, &mc, day2)
		return signatureJSON(b, r1.Signatures), signatureJSON(b, r2.Signatures)
	}
	ref1, ref2 := pin()
	for name, opts := range map[string][]kizzle.Option{
		"fleet": fleetOpts(2),
	} {
		g1, g2 := pin(opts...)
		if g1 != ref1 || g2 != ref2 {
			b.Fatalf("%s recompile output diverged from single-process reference", name)
		}
	}

	b.Run("full", func(b *testing.B) {
		// The pre-PR5 loop: every tick builds a fresh compiler, so day N+1
		// costs the same as day 1. Seeding happens outside the timer; the
		// measured region is the recompile itself.
		var stats kizzle.Stats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := seedRecompiler(b, day)
			var mc kizzle.MatcherCache
			b.StartTimer()
			stats = recompileOnce(b, c, &mc, day2).Stats
		}
		b.ReportMetric(float64(stats.LabelSweeps), "label-sweeps")
	})
	b.Run("incremental", func(b *testing.B) {
		var stats kizzle.Stats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := seedRecompiler(b, day)
			var mc kizzle.MatcherCache
			recompileOnce(b, c, &mc, day1) // yesterday warms the caches
			b.StartTimer()
			stats = recompileOnce(b, c, &mc, day2).Stats
		}
		b.ReportMetric(float64(stats.LabelSweeps), "label-sweeps")
	})
	b.Run("fleet", func(b *testing.B) {
		var stats kizzle.Stats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := seedRecompiler(b, day, fleetOpts(2)...)
			var mc kizzle.MatcherCache
			recompileOnce(b, c, &mc, day1)
			b.StartTimer()
			stats = recompileOnce(b, c, &mc, day2).Stats
		}
		b.ReportMetric(float64(stats.LabelSweeps), "label-sweeps")
	})
}
