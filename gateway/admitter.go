package gateway

import (
	"bytes"
	"sync"
	"sync/atomic"
	"time"

	"kizzle/internal/contentcache"
	"kizzle/internal/servemetrics"
	"kizzle/internal/verdictcache"
	"kizzle/internal/zerocopy"
)

// Admitter coalesces concurrent admission checks into micro-batches.
//
// Two effects pay for the sub-millisecond queueing delay it adds. First,
// a batch rides one VetAllBytes call, so a burst of concurrent responses
// costs one worker-pool dispatch instead of one lock/dispatch per
// response. Second — the dominant effect under real traffic — identical
// in-flight documents are detected inside the window and scanned once:
// provider traffic is hot-key skewed (many users fetch the same landing
// page at the same moment), so a 32-document window is mostly duplicates
// and the scan work per admitted response collapses. Decisions are
// identical to per-document vetting: duplicates are verified byte-for-
// byte (a digest alone only nominates candidates), and every request
// still receives its own Decision.
//
// Buffer ownership follows VetBytes: the caller's document is only read
// until its VetBytes call returns, so pooled proxy buffers stay safe.
type Admitter struct {
	v        *Vetter
	maxBatch int
	maxWait  time.Duration
	// shared, when set by UseSharedStore, extends duplicate detection
	// across the fleet: verdicts for this matcher version computed by any
	// replica are consulted before a local scan.
	shared verdictcache.Store

	reqs chan admitReq
	done chan struct{}
	wg   sync.WaitGroup
	// closeMu fences enqueues against Close: a request holds the read
	// side across its send, so once Close holds the write side no request
	// can slip into a queue nobody serves.
	closeMu sync.RWMutex
	closed  bool

	requests      atomic.Int64
	batches       atomic.Int64
	coalesced     atomic.Int64
	sharedHits    atomic.Int64
	sharedPuts    atomic.Int64
	sharedRejects atomic.Int64
	lat           servemetrics.Hist
}

type admitReq struct {
	doc  []byte
	resp chan Decision
}

// NewAdmitter starts an admitter in front of v. maxBatch bounds the
// documents per micro-batch and maxWait the time the first document in a
// window waits for company; zero or negative values take the defaults
// (32 documents, 500µs). Close releases the admitter's goroutine.
func NewAdmitter(v *Vetter, maxBatch int, maxWait time.Duration) *Admitter {
	if maxBatch <= 0 {
		maxBatch = 32
	}
	if maxWait <= 0 {
		maxWait = 500 * time.Microsecond
	}
	a := &Admitter{
		v:        v,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		reqs:     make(chan admitReq, maxBatch),
		done:     make(chan struct{}),
	}
	a.wg.Add(1)
	go a.loop()
	return a
}

// VetBytes submits one document for admission and blocks for its
// decision. After Close it degrades to a direct (unbatched) vet, so
// in-flight and late callers always get a decision.
func (a *Admitter) VetBytes(doc []byte) Decision {
	a.requests.Add(1)
	start := time.Now()
	d, ok := a.submit(doc)
	if !ok {
		d = a.v.VetBytes(doc)
	}
	a.lat.Observe(time.Since(start))
	return d
}

// submit enqueues one document and waits for its decision; ok reports
// false once the admitter is closed. Holding closeMu across the send
// guarantees the collection loop is still alive to serve it — Close
// cannot take the write side, and so cannot stop the loop, while any
// enqueue is in flight.
func (a *Admitter) submit(doc []byte) (Decision, bool) {
	a.closeMu.RLock()
	if a.closed {
		a.closeMu.RUnlock()
		return Decision{}, false
	}
	r := admitReq{doc: doc, resp: make(chan Decision, 1)}
	a.reqs <- r
	a.closeMu.RUnlock()
	return <-r.resp, true
}

// Close stops the collection loop, waits for queued documents to be
// decided, and makes future VetBytes calls vet directly. Must be called
// at most once; the admitter keeps serving (unbatched) after.
func (a *Admitter) Close() {
	a.closeMu.Lock()
	a.closed = true
	a.closeMu.Unlock()
	close(a.done)
	a.wg.Wait()
}

// loop collects windows of requests and dispatches each as one batch.
func (a *Admitter) loop() {
	defer a.wg.Done()
	for {
		select {
		case first := <-a.reqs:
			a.dispatch(a.collect(first))
		case <-a.done:
			// Drain whatever made it into the queue before Close; their
			// senders are parked on resp channels.
			for {
				select {
				case r := <-a.reqs:
					a.dispatch(a.collect(r))
				default:
					return
				}
			}
		}
	}
}

// collect gathers one micro-batch: the first request plus whatever
// arrives within maxWait, capped at maxBatch.
func (a *Admitter) collect(first admitReq) []admitReq {
	batch := make([]admitReq, 1, a.maxBatch)
	batch[0] = first
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	for len(batch) < a.maxBatch {
		select {
		case r := <-a.reqs:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-a.done:
			return batch
		}
	}
	return batch
}

// UseSharedStore plugs a fleet-wide verdict store into the admitter:
// before a batch's unique documents are scanned locally, each is looked
// up by (matcher version, content digest), and verdicts the local scan
// produces are published back for the other replicas — under the same
// version pin, so a signature update landing mid-batch can never leak a
// stale verdict into the fleet. Call before serving; decisions stay
// byte-identical to the unshared path because an entry only ever answers
// for the exact matcher version that computed it, and only when its
// SHA-256 content sum matches the document in hand — the 64-bit cache
// key alone nominates candidates exactly as in-batch coalescing does,
// where bytes.Equal plays the same role.
func (a *Admitter) UseSharedStore(s verdictcache.Store) { a.shared = s }

// dispatch scans a batch's unique documents once and fans decisions back
// out to every request.
func (a *Admitter) dispatch(batch []admitReq) {
	a.batches.Add(1)
	docs := make([][]byte, 0, len(batch))
	digests := make([]uint64, 0, len(batch))
	slot := make([]int, len(batch))
	byDigest := make(map[uint64][]int, len(batch))
	for i, r := range batch {
		d := contentcache.Digest(zerocopy.String(r.doc))
		dup := -1
		for _, j := range byDigest[d] {
			if bytes.Equal(docs[j], r.doc) {
				dup = j
				break
			}
		}
		if dup >= 0 {
			slot[i] = dup
			a.coalesced.Add(1)
			continue
		}
		docs = append(docs, r.doc)
		digests = append(digests, d)
		byDigest[d] = append(byDigest[d], len(docs)-1)
		slot[i] = len(docs) - 1
	}
	decisions := a.decideAll(docs, digests)
	for i, r := range batch {
		r.resp <- decisions[slot[i]]
	}
}

// decideAll resolves a batch's unique documents to decisions: shared
// verdict store first (when configured and the matcher version is
// known), local scan for the misses, then version-pinned publication of
// the freshly scanned verdicts. A shared entry answers only when its
// SHA-256 content sum matches the document in hand: the XXH64 cache key
// is attacker-collidable, so serving on bare key equality would let a
// crafted benign/malicious digest pair turn a cached clean verdict into
// a fleet-wide scanner bypass.
func (a *Admitter) decideAll(docs [][]byte, digests []uint64) []Decision {
	shared := a.shared
	var ver int64
	if shared != nil {
		ver = a.v.Version()
	}
	if shared == nil || ver <= 0 {
		// No store, or no recorded matcher version to pin entries to —
		// an unpinned verdict could survive a signature update.
		return a.v.VetAllBytes(docs)
	}
	out := make([]Decision, len(docs))
	sums := make([]string, len(docs))
	for i := range docs {
		sums[i] = verdictcache.ContentSum(docs[i])
	}
	toScan := docs[:0:0]
	idx := make([]int, 0, len(docs))
	for i := range docs {
		if v, ok := shared.Get(ver, digests[i]); ok {
			if v.Sum == sums[i] {
				out[i] = Decision{Blocked: v.Blocked, Family: v.Family}
				a.sharedHits.Add(1)
				continue
			}
			// The key nominated an entry computed for different content —
			// a digest collision (accidental or adversarial) or a corrupt
			// store. Either way the verdict does not cover these bytes.
			a.sharedRejects.Add(1)
		}
		toScan = append(toScan, docs[i])
		idx = append(idx, i)
	}
	if len(toScan) == 0 {
		return out
	}
	scanned := a.v.VetAllBytes(toScan)
	// Publish only if the vetter still runs the version the lookups were
	// pinned to: a hot-swap mid-batch means these verdicts may have been
	// computed by either set, and neither pin would be trustworthy.
	if a.v.Version() == ver {
		for j, d := range scanned {
			shared.Put(ver, digests[idx[j]], verdictcache.Verdict{Blocked: d.Blocked, Family: d.Family, Sum: sums[idx[j]]})
			a.sharedPuts.Add(1)
		}
	}
	for j, d := range scanned {
		out[idx[j]] = d
	}
	return out
}

// Metrics returns the admitter's /metrics fields: request, batch, and
// coalesced-duplicate counts plus the end-to-end admission latency
// (queueing included) summary.
func (a *Admitter) Metrics() map[string]any {
	return map[string]any{
		"requests":          a.requests.Load(),
		"batches":           a.batches.Load(),
		"coalesced":         a.coalesced.Load(),
		"shared_hits":       a.sharedHits.Load(),
		"shared_puts":       a.sharedPuts.Load(),
		"shared_rejects":    a.sharedRejects.Load(),
		"admission_latency": a.lat.Summary(),
	}
}
