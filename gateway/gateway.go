package gateway

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kizzle"
	"kizzle/internal/servemetrics"
	"kizzle/internal/zerocopy"
)

// DefaultMaxScanBytes is the fleet-wide scan-size cap: the one constant
// every serving path sizes its buffering against, so the proxy and
// sigserve's /scan cannot drift apart on what "too big to scan" means. A
// document over the cap is never truncated-and-scanned — a truncated
// scan could miss a signature sitting past the cut and report the
// document clean with false confidence — it passes (streams) through
// unscanned and is counted, so operators can see oversized traffic
// instead of trusting a half-scan.
const DefaultMaxScanBytes = 4 << 20

// Decision is the outcome of scanning one document.
type Decision struct {
	// Blocked reports whether the document was rejected.
	Blocked bool
	// Family is the detected kit for blocked documents.
	Family string
}

// Scanner is the signature-set interface the gateway needs; both
// *kizzle.Matcher and *kizzle.MultiMatcher satisfy it.
type Scanner interface {
	Scan(doc string) []kizzle.Match
}

// BatchScanner is optionally implemented by signature sets that can scan
// documents in bulk across a worker pool (*kizzle.Matcher does). VetAll
// uses it when available.
type BatchScanner interface {
	Scanner
	ScanAll(docs []string) [][]kizzle.Match
}

// BytesScanner is optionally implemented by signature sets that can scan
// a document held in a byte slice in place (*kizzle.Matcher does).
// VetBytes uses it when available, which is what makes the proxy's pooled
// body buffers zero-copy end to end; other scanners fall back to one
// string copy.
type BytesScanner interface {
	Scanner
	ScanBytes(doc []byte) []kizzle.Match
}

// BatchBytesScanner is optionally implemented by signature sets that scan
// byte-slice batches in bulk (*kizzle.Matcher does); VetAllBytes — and
// through it the admission batcher — uses it when available.
type BatchBytesScanner interface {
	Scanner
	ScanAllBytes(docs [][]byte) [][]kizzle.Match
}

// multiAdapter lifts a MultiMatcher to the Scanner interface.
type multiAdapter struct{ m *kizzle.MultiMatcher }

func (a multiAdapter) Scan(doc string) []kizzle.Match {
	var out []kizzle.Match
	for _, fam := range a.m.Scan(doc) {
		out = append(out, kizzle.Match{Family: fam})
	}
	return out
}

// WrapMulti adapts a MultiMatcher for use as a gateway Scanner.
func WrapMulti(m *kizzle.MultiMatcher) Scanner { return multiAdapter{m: m} }

// Vetter makes admission decisions for documents. It is safe for
// concurrent use, and its signature set can be swapped live (the
// "frequent, automatic updates" of the AV distribution channel).
type Vetter struct {
	mu      sync.RWMutex
	scanner Scanner

	scanned atomic.Int64
	blocked atomic.Int64
	version atomic.Int64
	lat     servemetrics.Hist
}

// NewVetter builds a vetter around an initial signature set.
func NewVetter(scanner Scanner) *Vetter {
	return &Vetter{scanner: scanner}
}

// Update swaps in a new signature set atomically.
func (v *Vetter) Update(scanner Scanner) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.scanner = scanner
}

// SetVersion records the deployed signature-set version for the metrics
// surface; it does not affect scanning. Callers that poll sigdb set it
// alongside Update.
func (v *Vetter) SetVersion(version int64) { v.version.Store(version) }

// Version returns the version recorded by SetVersion (0 if never set).
func (v *Vetter) Version() int64 { return v.version.Load() }

// current returns the live scanner.
func (v *Vetter) current() Scanner {
	v.mu.RLock()
	scanner := v.scanner
	v.mu.RUnlock()
	return scanner
}

// decide folds matches into a Decision, maintaining the blocked counter.
func (v *Vetter) decide(matches []kizzle.Match) Decision {
	if len(matches) == 0 {
		return Decision{}
	}
	v.blocked.Add(1)
	return Decision{Blocked: true, Family: matches[0].Family}
}

// Vet scans one document. It is a thin compatibility wrapper over
// VetBytes: the string is viewed as bytes without copying, so the byte
// path is the single scanning implementation.
func (v *Vetter) Vet(doc string) Decision {
	return v.VetBytes(zerocopy.Bytes(doc))
}

// VetBytes scans one document held in a byte slice. With a BytesScanner
// deployed the document is scanned in place — the caller keeps ownership
// of the buffer and may reuse it the moment the call returns; decisions
// are identical to Vet(string(doc)).
func (v *Vetter) VetBytes(doc []byte) Decision {
	scanner := v.current()
	v.scanned.Add(1)
	if scanner == nil {
		return Decision{}
	}
	start := time.Now()
	var matches []kizzle.Match
	if bs, ok := scanner.(BytesScanner); ok {
		matches = bs.ScanBytes(doc)
	} else {
		matches = scanner.Scan(string(doc))
	}
	v.lat.Observe(time.Since(start))
	return v.decide(matches)
}

// VetAll scans a batch of documents and returns per-document decisions
// aligned with the input. It is a thin compatibility wrapper over
// VetAllBytes: documents are viewed as bytes without copying, so the
// byte path is the single batch-scanning implementation.
func (v *Vetter) VetAll(docs []string) []Decision {
	views := make([][]byte, len(docs))
	for i, doc := range docs {
		views[i] = zerocopy.Bytes(doc)
	}
	return v.VetAllBytes(views)
}

// VetAllBytes is the batch-scanning core: zero-copy with a
// BatchBytesScanner deployed, aligned with the input, and
// decision-identical to per-document VetBytes calls. Scanners that batch
// only over strings (BatchScanner) keep their worker-pool fan-out
// through zero-copy string views; plain Scanners fall back to one serial
// scan (and one string copy) per document. Buffer-ownership rules are
// those of VetBytes.
func (v *Vetter) VetAllBytes(docs [][]byte) []Decision {
	scanner := v.current()
	v.scanned.Add(int64(len(docs)))
	out := make([]Decision, len(docs))
	if scanner == nil || len(docs) == 0 {
		return out
	}
	start := time.Now()
	switch bs := scanner.(type) {
	case BatchBytesScanner:
		for i, matches := range bs.ScanAllBytes(docs) {
			out[i] = v.decide(matches)
		}
	case BatchScanner:
		views := make([]string, len(docs))
		for i, doc := range docs {
			views[i] = zerocopy.String(doc)
		}
		for i, matches := range bs.ScanAll(views) {
			out[i] = v.decide(matches)
		}
	default:
		for i, doc := range docs {
			var matches []kizzle.Match
			if s, ok := scanner.(BytesScanner); ok {
				matches = s.ScanBytes(doc)
			} else {
				matches = scanner.Scan(string(doc))
			}
			out[i] = v.decide(matches)
		}
	}
	// Batch entry points record the whole call once: that is the latency
	// every document in the batch experienced.
	v.lat.Observe(time.Since(start))
	return out
}

// Stats reports how many documents were scanned and blocked.
func (v *Vetter) Stats() (scanned, blocked int64) {
	return v.scanned.Load(), v.blocked.Load()
}

// ScanLatency exposes the vetter's scan-latency histogram (p50/p99 for
// the /metrics surface). Batch calls record one observation per call,
// per-document calls one per document.
func (v *Vetter) ScanLatency() *servemetrics.Hist { return &v.lat }

// Metrics returns the vetter's /metrics fields: scan and block counts,
// the recorded signature-set version, and the scan-latency summary.
func (v *Vetter) Metrics() map[string]any {
	return map[string]any{
		"scanned":         v.scanned.Load(),
		"blocked":         v.blocked.Load(),
		"matcher_version": v.version.Load(),
		"scan_latency":    v.lat.Summary(),
	}
}

// Proxy is a scanning reverse proxy: HTML and JavaScript responses from the
// upstream are buffered, vetted, and replaced with 403 when a signature
// fires. Non-script content passes through untouched.
type Proxy struct {
	vetter *Vetter
	proxy  *httputil.ReverseProxy
	// admit, when set by UseAdmitter, routes each body through the
	// admission batcher instead of a direct per-document vet.
	admit *Admitter
	// MaxScanBytes bounds how much of a response is buffered for
	// scanning (default DefaultMaxScanBytes); larger responses stream
	// through unscanned — never truncated-and-scanned — rather than
	// stalling the proxy.
	MaxScanBytes int64
}

// NewProxy builds a scanning reverse proxy in front of upstream.
func NewProxy(upstream *url.URL, vetter *Vetter) *Proxy {
	p := &Proxy{vetter: vetter, MaxScanBytes: DefaultMaxScanBytes}
	rp := httputil.NewSingleHostReverseProxy(upstream)
	rp.ModifyResponse = p.modifyResponse
	p.proxy = rp
	return p
}

// UseAdmitter routes the proxy's admission decisions through a (already
// running) Admitter, so concurrent in-flight responses coalesce into
// micro-batches — and duplicate in-flight documents into single scans —
// instead of each paying its own scan. Decisions are identical to the
// direct path. Call before serving; the admitter must outlive the proxy.
func (p *Proxy) UseAdmitter(a *Admitter) { p.admit = a }

var _ http.Handler = (*Proxy)(nil)

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.proxy.ServeHTTP(w, r)
}

// scannable reports whether a response content type carries script.
func scannable(contentType string) bool {
	ct := strings.ToLower(contentType)
	return strings.Contains(ct, "text/html") ||
		strings.Contains(ct, "javascript") ||
		strings.Contains(ct, "ecmascript")
}

// bodyPool recycles response-body buffers across proxied requests: a
// vetted-and-passed response costs zero scan-path allocations in steady
// state. 64 KiB starting capacity holds the overwhelming share of web
// responses; larger bodies grow their pooled buffer once and the grown
// buffer is what returns to the pool.
var bodyPool = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

// readBodyInto reads r to EOF into buf (growing it as needed), stopping
// early once more than max bytes have been read. It returns the filled
// buffer; the caller decides what an over-max read means.
func readBodyInto(buf []byte, r io.Reader, max int64) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
		if int64(len(buf)) > max {
			return buf, nil
		}
	}
}

// pooledBody is a response body backed by a pooled buffer: Close returns
// the buffer to the pool (and closes the remaining upstream body, when
// the oversized path left one attached). Close is idempotent —
// http.ReverseProxy closes the body it copies from, but defensive double
// closes must not double-free the buffer.
type pooledBody struct {
	io.Reader
	buf  *[]byte
	rest io.Closer
}

func (pb *pooledBody) Close() error {
	if pb.buf != nil {
		bodyPool.Put(pb.buf)
		pb.buf = nil
	}
	if pb.rest != nil {
		rest := pb.rest
		pb.rest = nil
		return rest.Close()
	}
	return nil
}

func (p *Proxy) modifyResponse(resp *http.Response) error {
	if !scannable(resp.Header.Get("Content-Type")) {
		return nil
	}
	if resp.ContentLength > p.MaxScanBytes {
		return nil
	}
	bp := bodyPool.Get().(*[]byte)
	body, err := readBodyInto((*bp)[:0], resp.Body, p.MaxScanBytes)
	*bp = body[:0] // keep any growth pooled, whatever path returns it
	if err != nil {
		bodyPool.Put(bp)
		resp.Body.Close()
		return fmt.Errorf("gateway: read upstream body: %w", err)
	}
	if int64(len(body)) > p.MaxScanBytes {
		// Too large to scan (chunked responses reach here: their length is
		// unknown until read). Pass through what was buffered followed by
		// the rest of the upstream body, unconsumed and untruncated.
		resp.Body = &pooledBody{
			Reader: io.MultiReader(bytes.NewReader(body), resp.Body),
			buf:    bp,
			rest:   resp.Body,
		}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return nil
	}
	if closeErr := resp.Body.Close(); closeErr != nil {
		bodyPool.Put(bp)
		return fmt.Errorf("gateway: close upstream body: %w", closeErr)
	}
	var d Decision
	if p.admit != nil {
		d = p.admit.VetBytes(body)
	} else {
		d = p.vetter.VetBytes(body)
	}
	if d.Blocked {
		bodyPool.Put(bp)
		blocked := fmt.Sprintf("blocked by kizzle: %s exploit kit detected\n", d.Family)
		resp.StatusCode = http.StatusForbidden
		resp.Status = http.StatusText(http.StatusForbidden)
		resp.Header = http.Header{"Content-Type": {"text/plain; charset=utf-8"}}
		resp.Body = io.NopCloser(strings.NewReader(blocked))
		resp.ContentLength = int64(len(blocked))
		return nil
	}
	resp.Body = &pooledBody{Reader: bytes.NewReader(body), buf: bp}
	resp.ContentLength = int64(len(body))
	return nil
}
