package gateway

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"

	"kizzle"
)

// Decision is the outcome of scanning one document.
type Decision struct {
	// Blocked reports whether the document was rejected.
	Blocked bool
	// Family is the detected kit for blocked documents.
	Family string
}

// Scanner is the signature-set interface the gateway needs; both
// *kizzle.Matcher and *kizzle.MultiMatcher satisfy it.
type Scanner interface {
	Scan(doc string) []kizzle.Match
}

// BatchScanner is optionally implemented by signature sets that can scan
// documents in bulk across a worker pool (*kizzle.Matcher does). VetAll
// uses it when available.
type BatchScanner interface {
	Scanner
	ScanAll(docs []string) [][]kizzle.Match
}

// multiAdapter lifts a MultiMatcher to the Scanner interface.
type multiAdapter struct{ m *kizzle.MultiMatcher }

func (a multiAdapter) Scan(doc string) []kizzle.Match {
	var out []kizzle.Match
	for _, fam := range a.m.Scan(doc) {
		out = append(out, kizzle.Match{Family: fam})
	}
	return out
}

// WrapMulti adapts a MultiMatcher for use as a gateway Scanner.
func WrapMulti(m *kizzle.MultiMatcher) Scanner { return multiAdapter{m: m} }

// Vetter makes admission decisions for documents. It is safe for
// concurrent use, and its signature set can be swapped live (the
// "frequent, automatic updates" of the AV distribution channel).
type Vetter struct {
	mu      sync.RWMutex
	scanner Scanner

	scanned atomic.Int64
	blocked atomic.Int64
}

// NewVetter builds a vetter around an initial signature set.
func NewVetter(scanner Scanner) *Vetter {
	return &Vetter{scanner: scanner}
}

// Update swaps in a new signature set atomically.
func (v *Vetter) Update(scanner Scanner) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.scanner = scanner
}

// Vet scans one document.
func (v *Vetter) Vet(doc string) Decision {
	v.mu.RLock()
	scanner := v.scanner
	v.mu.RUnlock()
	v.scanned.Add(1)
	if scanner == nil {
		return Decision{}
	}
	matches := scanner.Scan(doc)
	if len(matches) == 0 {
		return Decision{}
	}
	v.blocked.Add(1)
	return Decision{Blocked: true, Family: matches[0].Family}
}

// VetAll scans a batch of documents and returns per-document decisions
// aligned with the input. When the deployed signature set supports batch
// scanning the whole batch fans out across one worker pool; otherwise the
// documents are scanned serially.
func (v *Vetter) VetAll(docs []string) []Decision {
	v.mu.RLock()
	scanner := v.scanner
	v.mu.RUnlock()
	v.scanned.Add(int64(len(docs)))
	out := make([]Decision, len(docs))
	if scanner == nil || len(docs) == 0 {
		return out
	}
	if bs, ok := scanner.(BatchScanner); ok {
		for i, matches := range bs.ScanAll(docs) {
			if len(matches) > 0 {
				out[i] = Decision{Blocked: true, Family: matches[0].Family}
				v.blocked.Add(1)
			}
		}
		return out
	}
	for i, doc := range docs {
		if matches := scanner.Scan(doc); len(matches) > 0 {
			out[i] = Decision{Blocked: true, Family: matches[0].Family}
			v.blocked.Add(1)
		}
	}
	return out
}

// Stats reports how many documents were scanned and blocked.
func (v *Vetter) Stats() (scanned, blocked int64) {
	return v.scanned.Load(), v.blocked.Load()
}

// Proxy is a scanning reverse proxy: HTML and JavaScript responses from the
// upstream are buffered, vetted, and replaced with 403 when a signature
// fires. Non-script content passes through untouched.
type Proxy struct {
	vetter *Vetter
	proxy  *httputil.ReverseProxy
	// MaxScanBytes bounds how much of a response is buffered for
	// scanning (default 4 MiB); larger responses pass unscanned rather
	// than stalling the proxy.
	MaxScanBytes int64
}

// NewProxy builds a scanning reverse proxy in front of upstream.
func NewProxy(upstream *url.URL, vetter *Vetter) *Proxy {
	p := &Proxy{vetter: vetter, MaxScanBytes: 4 << 20}
	rp := httputil.NewSingleHostReverseProxy(upstream)
	rp.ModifyResponse = p.modifyResponse
	p.proxy = rp
	return p
}

var _ http.Handler = (*Proxy)(nil)

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.proxy.ServeHTTP(w, r)
}

// scannable reports whether a response content type carries script.
func scannable(contentType string) bool {
	ct := strings.ToLower(contentType)
	return strings.Contains(ct, "text/html") ||
		strings.Contains(ct, "javascript") ||
		strings.Contains(ct, "ecmascript")
}

func (p *Proxy) modifyResponse(resp *http.Response) error {
	if !scannable(resp.Header.Get("Content-Type")) {
		return nil
	}
	if resp.ContentLength > p.MaxScanBytes {
		return nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, p.MaxScanBytes+1))
	closeErr := resp.Body.Close()
	if err != nil {
		return fmt.Errorf("gateway: read upstream body: %w", err)
	}
	if closeErr != nil {
		return fmt.Errorf("gateway: close upstream body: %w", closeErr)
	}
	if int64(len(body)) > p.MaxScanBytes {
		// Too large to scan: pass through what we read plus the rest.
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		return nil
	}
	if d := p.vetter.Vet(string(body)); d.Blocked {
		blocked := fmt.Sprintf("blocked by kizzle: %s exploit kit detected\n", d.Family)
		resp.StatusCode = http.StatusForbidden
		resp.Status = http.StatusText(http.StatusForbidden)
		resp.Header = http.Header{"Content-Type": {"text/plain; charset=utf-8"}}
		resp.Body = io.NopCloser(strings.NewReader(blocked))
		resp.ContentLength = int64(len(blocked))
		return nil
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return nil
}
