// Package gateway implements the paper's deployment channels as a working
// HTTP component: "Kizzle signatures may be deployed within a browser ...
// to scan all or some of the incoming JavaScript code" and "server-side,
// for instance, a CDN administrator may decide which JavaScript files to
// host". The Proxy is a reverse proxy that scans HTML/JavaScript responses
// with a deployed signature set and blocks exploit-kit landings; the
// Vetter is the CDN-side admission check for uploads.
//
// The serving hot path is built for provider load. Response bodies move
// as []byte through pooled buffers (Vetter.VetBytes, the BytesScanner
// fast path) — a vetted-and-passed response allocates nothing on the
// scan path. Concurrent admissions coalesce through the Admitter into
// micro-batches that dispatch one ScanAll sweep per window and scan each
// distinct in-flight document once; under the hot-key skew an edge
// actually sees, most requests are answered by another request's scan.
// Batched decisions are differentially pinned identical to per-document
// decisions, so batching is an economics knob, never a semantics one.
//
// Signature updates arrive through sigdb's polling client (conditional,
// jittered, per-family deltas), so a running proxy converges on a new
// published set without restarting; Vetter.Update swaps the matcher
// atomically under in-flight scans. BenchmarkServe prices the path —
// direct vs batched, cold vs warm signature swap — and reports exact
// p50/p99 custom metrics that CI's bench gate enforces as SLOs.
package gateway
