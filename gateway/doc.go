// Package gateway implements the paper's deployment channels as a working
// HTTP component: "Kizzle signatures may be deployed within a browser ...
// to scan all or some of the incoming JavaScript code" and "server-side,
// for instance, a CDN administrator may decide which JavaScript files to
// host". The Proxy is a reverse proxy that scans HTML/JavaScript responses
// with a deployed signature set and blocks exploit-kit landings; the
// Vetter is the CDN-side admission check for uploads.
//
// Both components scan through a shared BatchScanner: Vetter.VetAll
// admits a whole upload batch in one pass across the matcher's worker
// pool, which is the shape CDN admission queues and scan APIs call with.
// Signature updates arrive through sigdb's polling client, so a running
// proxy converges on a new published set without restarting.
package gateway
