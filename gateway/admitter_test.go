package gateway

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"kizzle/internal/contentcache"
	"kizzle/internal/verdictcache"
	"kizzle/synth"
)

// TestVetBytesMatchesVet pins the zero-copy entry points against the
// string path, for byte-capable scanners and for plain scanners on the
// copying fallback.
func TestVetBytesMatchesVet(t *testing.T) {
	day := synth.Date(time.August, 5)
	m := buildMatcher(t, day)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 10
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	for _, s := range stream.Day(day) {
		docs = append(docs, s.Content)
	}
	docs = append(docs, "", "var benign = 1;")

	for _, scanner := range []Scanner{m, plainScanner{m}} {
		ref := NewVetter(scanner)
		v := NewVetter(scanner)
		byteDocs := make([][]byte, len(docs))
		for i, doc := range docs {
			byteDocs[i] = []byte(doc)
			if got, want := v.VetBytes(byteDocs[i]), ref.Vet(doc); got != want {
				t.Fatalf("doc %d: VetBytes %+v vs Vet %+v", i, got, want)
			}
		}
		batch := NewVetter(scanner).VetAllBytes(byteDocs)
		for i, doc := range docs {
			if want := NewVetter(scanner).Vet(doc); batch[i] != want {
				t.Fatalf("doc %d: VetAllBytes %+v vs Vet %+v", i, batch[i], want)
			}
		}
	}
}

// TestAdmitterMatchesDirect is the batched≡per-document differential:
// concurrent admissions through the batcher must produce exactly the
// decisions direct vetting produces, document for document.
func TestAdmitterMatchesDirect(t *testing.T) {
	day := synth.Date(time.August, 5)
	m := buildMatcher(t, day)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 20
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var docs [][]byte
	for _, s := range stream.Day(day) {
		docs = append(docs, []byte(s.Content))
	}

	direct := NewVetter(m)
	want := make([]Decision, len(docs))
	for i, doc := range docs {
		want[i] = direct.VetBytes(doc)
	}

	v := NewVetter(m)
	a := NewAdmitter(v, 8, 200*time.Microsecond)
	defer a.Close()
	got := make([]Decision, len(docs))
	var wg sync.WaitGroup
	for i := range docs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = a.VetBytes(docs[i])
		}(i)
	}
	wg.Wait()
	for i := range docs {
		if got[i] != want[i] {
			t.Fatalf("doc %d: batched %+v vs direct %+v", i, got[i], want[i])
		}
	}
}

// TestAdmitterCoalescesDuplicates: identical in-flight documents must be
// scanned once per window, and every request must still get the right
// decision.
func TestAdmitterCoalescesDuplicates(t *testing.T) {
	day := synth.Date(time.August, 5)
	v := NewVetter(buildMatcher(t, day))
	// A long window so one batch holds the whole burst.
	a := NewAdmitter(v, 64, 50*time.Millisecond)
	defer a.Close()

	kit := []byte(kitDoc(t, day))
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if d := a.VetBytes(kit); !d.Blocked || d.Family != "Angler" {
				t.Errorf("coalesced decision = %+v", d)
			}
		}()
	}
	wg.Wait()
	scanned, blocked := v.Stats()
	if scanned >= n {
		t.Errorf("scanned %d documents for %d identical requests; coalescing had no effect", scanned, n)
	}
	if blocked < 1 || blocked != scanned {
		t.Errorf("blocked = %d with %d scans", blocked, scanned)
	}
	mtr := a.Metrics()
	if mtr["requests"].(int64) != n {
		t.Errorf("requests metric = %v, want %d", mtr["requests"], n)
	}
	if mtr["coalesced"].(int64) != n-scanned {
		t.Errorf("coalesced metric = %v, want %d", mtr["coalesced"], n-scanned)
	}
}

// TestAdmitterDigestCollisionSafety: documents that merely share a digest
// bucket candidate must be verified byte-for-byte, so distinct documents
// always get their own scans and decisions.
func TestAdmitterDistinctDocsDistinctDecisions(t *testing.T) {
	day := synth.Date(time.August, 5)
	v := NewVetter(buildMatcher(t, day))
	a := NewAdmitter(v, 16, 20*time.Millisecond)
	defer a.Close()

	kit := []byte(kitDoc(t, day))
	benign := []byte(`var benign = 1;`)
	var wg sync.WaitGroup
	results := make([]Decision, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				results[i] = a.VetBytes(kit)
			} else {
				results[i] = a.VetBytes(benign)
			}
		}(i)
	}
	wg.Wait()
	for i, d := range results {
		if i%2 == 0 && (!d.Blocked || d.Family != "Angler") {
			t.Errorf("kit request %d: %+v", i, d)
		}
		if i%2 == 1 && d.Blocked {
			t.Errorf("benign request %d blocked", i)
		}
	}
}

// TestAdmitterCloseFallback: after Close, admissions still get correct
// decisions via the direct path, and Close drains queued requests.
func TestAdmitterCloseFallback(t *testing.T) {
	day := synth.Date(time.August, 5)
	v := NewVetter(buildMatcher(t, day))
	a := NewAdmitter(v, 32, time.Millisecond)
	kit := []byte(kitDoc(t, day))
	if d := a.VetBytes(kit); !d.Blocked {
		t.Fatal("pre-close admission missed kit")
	}
	a.Close()
	if d := a.VetBytes(kit); !d.Blocked || d.Family != "Angler" {
		t.Errorf("post-close admission = %+v", d)
	}
	if a.VetBytes([]byte("var benign = 1;")).Blocked {
		t.Error("post-close admission blocked benign")
	}
}

// TestVetterUpdateDuringVetAllBytes swaps signature sets while batched
// byte scans are in flight; run under -race this pins the hot-swap
// locking. Every decision must come from one coherent signature set.
func TestVetterUpdateDuringVetAllBytes(t *testing.T) {
	day := synth.Date(time.August, 5)
	m := buildMatcher(t, day)
	v := NewVetter(m)
	kit := []byte(kitDoc(t, day))
	docs := [][]byte{kit, []byte("var benign = 1;"), kit}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				v.Update(m)
				v.SetVersion(v.Version() + 1)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		out := v.VetAllBytes(docs)
		if !out[0].Blocked || out[1].Blocked || !out[2].Blocked {
			t.Fatalf("iteration %d: decisions %+v", i, out)
		}
	}
	close(stop)
	wg.Wait()
}

// TestProxyChunkedOversizedNotTruncated: a chunked (unknown-length)
// response that exceeds MaxScanBytes must pass through complete — the
// buffered prefix followed by the unread tail — not truncated at the
// scan bound.
func TestProxyChunkedOversizedNotTruncated(t *testing.T) {
	day := synth.Date(time.August, 5)
	big := bytes.Repeat([]byte("chunked-oversized-body."), 200) // ~4.6 KiB
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		// Flush after a prefix so the response goes out chunked with
		// ContentLength unknown to the proxy.
		w.Write(big[:100])
		w.(http.Flusher).Flush()
		w.Write(big[100:])
	}))
	defer upstream.Close()
	target, err := url.Parse(upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProxy(target, NewVetter(buildMatcher(t, day)))
	p.MaxScanBytes = 1024
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Get(front.URL + "/big.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !bytes.Equal(body, big) {
		t.Errorf("chunked oversized body corrupted: got %d bytes, want %d", len(body), len(big))
	}
}

// TestProxyChunkedUnderLimitScanned: chunked delivery must not bypass
// scanning when the body fits the scan bound.
func TestProxyChunkedUnderLimitScanned(t *testing.T) {
	day := synth.Date(time.August, 5)
	kit := kitDoc(t, day)
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, kit[:40])
		w.(http.Flusher).Flush()
		io.WriteString(w, kit[40:])
	}))
	defer upstream.Close()
	target, err := url.Parse(upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(NewProxy(target, NewVetter(buildMatcher(t, day))))
	defer front.Close()

	resp, err := http.Get(front.URL + "/landing")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("chunked kit page: status %d, want 403", resp.StatusCode)
	}
}

// TestProxyWithAdmitter drives the proxy end to end through the
// admission batcher: kit blocked, benign served intact, duplicate
// concurrent fetches coalesced without changing any response.
func TestProxyWithAdmitter(t *testing.T) {
	day := synth.Date(time.August, 5)
	kit := kitDoc(t, day)
	benign := `<html><body><script>var x = document.title;</script></body></html>`
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		if r.URL.Path == "/landing" {
			io.WriteString(w, kit)
			return
		}
		io.WriteString(w, benign)
	}))
	defer upstream.Close()
	target, err := url.Parse(upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVetter(buildMatcher(t, day))
	a := NewAdmitter(v, 32, time.Millisecond)
	defer a.Close()
	p := NewProxy(target, v)
	p.UseAdmitter(a)
	front := httptest.NewServer(p)
	defer front.Close()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path, wantCode := "/landing", http.StatusForbidden
			if i%2 == 0 {
				path, wantCode = "/index.html", http.StatusOK
			}
			resp, err := http.Get(front.URL + path)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != wantCode {
				t.Errorf("%s: status %d, want %d", path, resp.StatusCode, wantCode)
			}
			if wantCode == http.StatusOK && string(body) != benign {
				t.Errorf("%s: body corrupted through pooled buffers", path)
			}
		}(i)
	}
	wg.Wait()
	if mtr := a.Metrics(); mtr["requests"].(int64) != 16 {
		t.Errorf("admitter saw %v requests, want 16", mtr["requests"])
	}
}

// TestAdmitterSharedStore pins fleet cache semantics: two replica
// admitters sharing one verdict cache produce decisions identical to
// direct vetting, the second replica hits verdicts the first scanned,
// and a version bump invalidates everything.
func TestAdmitterSharedStore(t *testing.T) {
	day := synth.Date(time.August, 5)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 20
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var docs [][]byte
	for _, s := range stream.Day(day) {
		docs = append(docs, []byte(s.Content))
	}

	direct := NewVetter(buildMatcher(t, day))
	want := make([]Decision, len(docs))
	for i, doc := range docs {
		want[i] = direct.VetBytes(doc)
	}

	cache := verdictcache.New(0)
	replicas := make([]*Admitter, 2)
	vetters := make([]*Vetter, 2)
	for i := range replicas {
		vetters[i] = NewVetter(buildMatcher(t, day))
		vetters[i].SetVersion(1)
		replicas[i] = NewAdmitter(vetters[i], 8, 200*time.Microsecond)
		replicas[i].UseSharedStore(cache)
		defer replicas[i].Close()
	}

	// Replica 0 scans everything, populating the shared cache.
	for i, doc := range docs {
		if got := replicas[0].VetBytes(doc); got != want[i] {
			t.Fatalf("replica 0 doc %d: %+v, want %+v", i, got, want[i])
		}
	}
	// Replica 1 must answer identically — from the shared cache, without
	// scanning a single document.
	scannedBefore, _ := vetters[1].Stats()
	for i, doc := range docs {
		if got := replicas[1].VetBytes(doc); got != want[i] {
			t.Fatalf("replica 1 doc %d: %+v, want %+v", i, got, want[i])
		}
	}
	scannedAfter, _ := vetters[1].Stats()
	if scannedAfter != scannedBefore {
		t.Errorf("replica 1 scanned %d docs, want 0 (all shared hits)", scannedAfter-scannedBefore)
	}
	if hits := replicas[1].Metrics()["shared_hits"].(int64); hits != int64(len(docs)) {
		t.Errorf("shared_hits = %d, want %d", hits, len(docs))
	}

	// A version bump wipes the cache: replica 1 now scans again.
	vetters[1].SetVersion(2)
	if got := replicas[1].VetBytes(docs[0]); got != want[0] {
		t.Fatalf("post-bump decision %+v, want %+v", got, want[0])
	}
	scannedPostBump, _ := vetters[1].Stats()
	if scannedPostBump == scannedAfter {
		t.Error("version bump did not force a rescan")
	}
	if cache.Version() != 2 {
		t.Errorf("cache version %d, want 2", cache.Version())
	}
}

// TestAdmitterSharedStoreChecksumGuard pins the collision defense: the
// shared cache's 64-bit XXH64 key only nominates an entry, and an entry
// whose SHA-256 content sum does not match the document in hand — an
// attacker-constructed digest collision, or a corrupt store — must be
// ignored: the document is scanned locally and the poisoned entry
// overwritten with the genuine verdict.
func TestAdmitterSharedStoreChecksumGuard(t *testing.T) {
	day := synth.Date(time.August, 5)
	cache := verdictcache.New(0)
	v := NewVetter(buildMatcher(t, day))
	v.SetVersion(1)
	a := NewAdmitter(v, 8, 200*time.Microsecond)
	a.UseSharedStore(cache)
	defer a.Close()

	kit := []byte(kitDoc(t, day))
	kitKey := contentcache.Digest(string(kit))
	// Plant a clean verdict under the kit's cache key carrying the sum of
	// different content — what a digest-colliding benign twin, scanned
	// and cached clean, would leave behind for the kit page to ride on.
	cache.Put(1, kitKey, verdictcache.Verdict{
		Blocked: false,
		Sum:     verdictcache.ContentSum([]byte("benign colliding twin")),
	})
	if d := a.VetBytes(kit); !d.Blocked || d.Family != "Angler" {
		t.Fatalf("forged clean verdict bypassed the scanner: %+v", d)
	}
	if rejects := a.Metrics()["shared_rejects"].(int64); rejects != 1 {
		t.Errorf("shared_rejects = %d, want 1", rejects)
	}
	if hits := a.Metrics()["shared_hits"].(int64); hits != 0 {
		t.Errorf("shared_hits = %d, want 0", hits)
	}
	// The rescan published the genuine verdict over the forged entry.
	if got, ok := cache.Get(1, kitKey); !ok || !got.Blocked || got.Sum != verdictcache.ContentSum(kit) {
		t.Errorf("cache entry after rescan: %+v ok=%v", got, ok)
	}
}

// TestAdmitterSharedStoreUnversionedVetter pins the safety gate: a
// vetter that never recorded a matcher version must bypass the shared
// store entirely (an unpinned verdict could outlive a signature update).
func TestAdmitterSharedStoreUnversionedVetter(t *testing.T) {
	day := synth.Date(time.August, 5)
	cache := verdictcache.New(0)
	v := NewVetter(buildMatcher(t, day)) // version never set
	a := NewAdmitter(v, 8, 200*time.Microsecond)
	a.UseSharedStore(cache)
	defer a.Close()
	a.VetBytes([]byte(kitDoc(t, day)))
	if cache.Len() != 0 {
		t.Errorf("unversioned vetter published %d verdicts to the fleet", cache.Len())
	}
	if puts := a.Metrics()["shared_puts"].(int64); puts != 0 {
		t.Errorf("shared_puts = %d, want 0", puts)
	}
}
