package gateway

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"kizzle"
	"kizzle/synth"
)

// trainSignatures produces a real signature set from one synthetic day.
func trainSignatures(t testing.TB, day int) []kizzle.Signature {
	t.Helper()
	c := kizzle.New(kizzle.WithSignatureSlack(2))
	for _, fam := range synth.Kits() {
		c.AddKnown(fam.String(), synth.Payload(fam, day-1))
	}
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 60
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var batch []kizzle.Sample
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
	}
	res, err := c.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Signatures) == 0 {
		t.Fatal("no signatures trained")
	}
	return res.Signatures
}

// buildMatcher trains a matcher on one synthetic day.
func buildMatcher(t testing.TB, day int) *kizzle.Matcher {
	t.Helper()
	m, err := kizzle.NewMatcher(trainSignatures(t, day))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func kitDoc(t testing.TB, day int) string {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 0
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream.Day(day) {
		if s.Family == synth.Angler {
			return s.Content
		}
	}
	t.Fatal("no Angler sample")
	return ""
}

func TestVetter(t *testing.T) {
	day := synth.Date(time.August, 5)
	v := NewVetter(buildMatcher(t, day))
	if d := v.Vet(`var x = document.title;`); d.Blocked {
		t.Error("benign blocked")
	}
	d := v.Vet(kitDoc(t, day))
	if !d.Blocked || d.Family != "Angler" {
		t.Errorf("kit decision = %+v", d)
	}
	scanned, blocked := v.Stats()
	if scanned != 2 || blocked != 1 {
		t.Errorf("stats = %d/%d, want 2/1", scanned, blocked)
	}
}

func TestVetterNilScanner(t *testing.T) {
	v := NewVetter(nil)
	if d := v.Vet("anything"); d.Blocked {
		t.Error("nil scanner must pass everything")
	}
}

func TestVetterLiveUpdate(t *testing.T) {
	day := synth.Date(time.August, 5)
	v := NewVetter(nil)
	doc := kitDoc(t, day)
	if v.Vet(doc).Blocked {
		t.Fatal("unarmed vetter blocked")
	}
	v.Update(buildMatcher(t, day))
	if !v.Vet(doc).Blocked {
		t.Fatal("updated vetter must block")
	}
}

func TestVetterConcurrent(t *testing.T) {
	day := synth.Date(time.August, 5)
	v := NewVetter(buildMatcher(t, day))
	doc := kitDoc(t, day)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if !v.Vet(doc).Blocked {
					t.Error("concurrent vet missed")
					return
				}
			}
		}()
	}
	// Concurrent updates while scanning.
	for i := 0; i < 5; i++ {
		v.Update(buildMatcher(t, day))
	}
	wg.Wait()
}

// TestProxyBlocksKitServesBenign drives the reverse proxy end to end with
// a real upstream HTTP server.
func TestProxyBlocksKitServesBenign(t *testing.T) {
	day := synth.Date(time.August, 5)
	kit := kitDoc(t, day)
	benign := `<html><body><script>var x = document.title;</script></body></html>`

	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/landing":
			w.Header().Set("Content-Type", "text/html")
			io.WriteString(w, kit)
		case "/app.js":
			w.Header().Set("Content-Type", "application/javascript")
			io.WriteString(w, `console.log("hello");`)
		case "/logo.png":
			w.Header().Set("Content-Type", "image/png")
			w.Write([]byte{0x89, 'P', 'N', 'G'})
		default:
			w.Header().Set("Content-Type", "text/html")
			io.WriteString(w, benign)
		}
	}))
	defer upstream.Close()

	target, err := url.Parse(upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(NewProxy(target, NewVetter(buildMatcher(t, day))))
	defer front.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(front.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/landing"); code != http.StatusForbidden {
		t.Errorf("kit landing: status %d body %.60q, want 403", code, body)
	}
	if code, body := get("/index.html"); code != http.StatusOK || body != benign {
		t.Errorf("benign page: status %d, body mismatch", code)
	}
	if code, _ := get("/app.js"); code != http.StatusOK {
		t.Errorf("benign js: status %d", code)
	}
	if code, _ := get("/logo.png"); code != http.StatusOK {
		t.Errorf("image passthrough: status %d", code)
	}
}

func TestProxyOversizedPassesUnscanned(t *testing.T) {
	day := synth.Date(time.August, 5)
	big := make([]byte, 2048)
	for i := range big {
		big[i] = 'a'
	}
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.Write(big)
	}))
	defer upstream.Close()
	target, err := url.Parse(upstream.URL)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProxy(target, NewVetter(buildMatcher(t, day)))
	p.MaxScanBytes = 1024
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Get(front.URL + "/big.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(body) != len(big) {
		t.Errorf("oversized response: status %d, %d bytes (want 200, %d)", resp.StatusCode, len(body), len(big))
	}
}

func TestWrapMulti(t *testing.T) {
	day := synth.Date(time.August, 5)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 0
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	for _, s := range stream.Day(day) {
		if s.Family == synth.Angler {
			docs = append(docs, s.Content)
		}
	}
	multi, err := kizzle.GenerateMulti("Angler", docs, kizzle.WithMultiSlack(2))
	if err != nil {
		t.Fatal(err)
	}
	mm, err := kizzle.NewMultiMatcher([]kizzle.MultiSignature{multi})
	if err != nil {
		t.Fatal(err)
	}
	v := NewVetter(WrapMulti(mm))
	if d := v.Vet(docs[0]); !d.Blocked || d.Family != "Angler" {
		t.Errorf("multi-backed vetter decision = %+v", d)
	}
	if v.Vet("var benign = 1;").Blocked {
		t.Error("multi-backed vetter blocked benign")
	}
}

func TestScannable(t *testing.T) {
	tests := []struct {
		ct   string
		want bool
	}{
		{"text/html; charset=utf-8", true},
		{"application/javascript", true},
		{"text/javascript", true},
		{"application/ecmascript", true},
		{"image/png", false},
		{"application/octet-stream", false},
		{"", false},
	}
	for _, tt := range tests {
		if got := scannable(tt.ct); got != tt.want {
			t.Errorf("scannable(%q) = %v, want %v", tt.ct, got, tt.want)
		}
	}
}

// TestVetAllMatchesVet: batch vetting must agree document-for-document
// with serial vetting, for batch-capable and plain scanners alike.
func TestVetAllMatchesVet(t *testing.T) {
	day := synth.Date(time.August, 6)
	m := buildMatcher(t, day)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 10
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	for _, s := range stream.Day(day) {
		docs = append(docs, s.Content)
	}

	batch := NewVetter(m).VetAll(docs)
	serialVetter := NewVetter(m)
	for i, doc := range docs {
		want := serialVetter.Vet(doc)
		if batch[i] != want {
			t.Fatalf("doc %d: batch %+v vs serial %+v", i, batch[i], want)
		}
	}

	// A scanner without batch support takes the fallback path and must
	// still agree.
	v := NewVetter(plainScanner{m})
	fallback := v.VetAll(docs)
	for i := range docs {
		if fallback[i] != batch[i] {
			t.Fatalf("doc %d: fallback %+v vs batch %+v", i, fallback[i], batch[i])
		}
	}
	scanned, blocked := v.Stats()
	if scanned != int64(len(docs)) {
		t.Errorf("scanned = %d, want %d", scanned, len(docs))
	}
	wantBlocked := int64(0)
	for _, d := range batch {
		if d.Blocked {
			wantBlocked++
		}
	}
	if blocked != wantBlocked {
		t.Errorf("blocked = %d, want %d", blocked, wantBlocked)
	}
}

// plainScanner hides the ScanAll method, forcing VetAll's serial fallback.
type plainScanner struct{ m *kizzle.Matcher }

func (p plainScanner) Scan(doc string) []kizzle.Match { return p.m.Scan(doc) }

func TestVetAllNilScanner(t *testing.T) {
	v := NewVetter(nil)
	for _, d := range v.VetAll([]string{"a", "b"}) {
		if d.Blocked {
			t.Error("nil scanner blocked a document")
		}
	}
}
