package gateway

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kizzle"
	"kizzle/internal/verdictcache"
	"kizzle/synth"
)

// benchCorpus builds the serving traffic: every document of one synthetic
// day (kit landings and benign pages alike), fetched under a zipf-skewed
// popularity law the way a provider's edge sees it — a few hot landing
// pages dominate while a long tail trickles.
func benchCorpus(b *testing.B, day int) [][]byte {
	b.Helper()
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 60
	stream, err := synth.NewStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var docs [][]byte
	for _, s := range stream.Day(day) {
		docs = append(docs, []byte(s.Content))
	}
	if len(docs) < 2 {
		b.Fatal("corpus too small")
	}
	return docs
}

// swapMode selects what the background signature-update loop does while
// the benchmark serves.
type swapMode int

const (
	noSwap   swapMode = iota
	coldSwap          // full recompile per update, the pre-delta deploy path
	warmSwap          // incremental per-family recompile, the delta deploy path
)

// benchServe drives 32 concurrent clients through the admission path for
// b.N documents and reports exact p50/p99 per-request latencies as custom
// metrics (benchgate gates every p50-/p99- metric alongside ns/op). The
// swap modes measure serving behavior while signature updates land
// mid-flight: coldSwap recompiles the full set per update, warmSwap only
// the changed family — the tail-latency difference is the case for the
// delta distribution channel.
func benchServe(b *testing.B, batched bool, swap swapMode) {
	const workers = 32
	day := synth.Date(time.August, 5)
	sigsA := trainSignatures(b, day)
	sigsB := trainSignatures(b, day+1)
	m, err := kizzle.NewMatcher(sigsA)
	if err != nil {
		b.Fatal(err)
	}
	docs := benchCorpus(b, day)
	v := NewVetter(m)
	var admit *Admitter
	if batched {
		admit = NewAdmitter(v, workers, 200*time.Microsecond)
		defer admit.Close()
	}

	stopSwap := make(chan struct{})
	var swapWG sync.WaitGroup
	if swap != noSwap {
		// Alternate between two real signature sets every few milliseconds
		// — far above any production update rate, to make swap cost show
		// up within a benchmark's runtime.
		var cache kizzle.MatcherCache
		if _, _, err := cache.Build(sigsA); err != nil {
			b.Fatal(err)
		}
		swapWG.Add(1)
		go func() {
			defer swapWG.Done()
			ticker := time.NewTicker(5 * time.Millisecond)
			defer ticker.Stop()
			flip := false
			for {
				select {
				case <-stopSwap:
					return
				case <-ticker.C:
				}
				sigs := sigsA
				if flip {
					sigs = sigsB
				}
				flip = !flip
				var next *kizzle.Matcher
				var err error
				if swap == warmSwap {
					next, _, err = cache.Build(sigs)
				} else {
					next, err = kizzle.NewMatcher(sigs)
				}
				if err != nil {
					b.Error(err)
					return
				}
				v.Update(next)
			}
		}()
	}

	lats := make([][]time.Duration, workers)
	var next atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			zipf := rand.NewZipf(rng, 1.5, 1, uint64(len(docs)-1))
			mine := make([]time.Duration, 0, b.N/workers+1)
			for next.Add(1) <= int64(b.N) {
				doc := docs[zipf.Uint64()]
				start := time.Now()
				if batched {
					admit.VetBytes(doc)
				} else {
					v.VetBytes(doc)
				}
				mine = append(mine, time.Since(start))
			}
			lats[w] = mine
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	close(stopSwap)
	swapWG.Wait()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) float64 {
		i := int(q * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return float64(all[i]) / 1e3
	}
	b.ReportMetric(quantile(0.50), "p50-us")
	b.ReportMetric(quantile(0.99), "p99-us")
	if batched {
		mtr := admit.Metrics()
		if reqs := mtr["requests"].(int64); reqs > 0 {
			b.ReportMetric(float64(mtr["coalesced"].(int64))/float64(reqs), "coalesced/req")
		}
	}
}

// BenchmarkServe is the serving-tier SLO benchmark: 32 concurrent
// clients, zipf-skewed traffic, exact per-request p50/p99. The batched
// variants must sustain at least twice the direct variant's throughput —
// in-flight duplicate coalescing scans a hot document once per admission
// window instead of once per request.
func BenchmarkServe(b *testing.B) {
	b.Run("direct", func(b *testing.B) { benchServe(b, false, noSwap) })
	b.Run("batched", func(b *testing.B) { benchServe(b, true, noSwap) })
	b.Run("batched-coldswap", func(b *testing.B) { benchServe(b, true, coldSwap) })
	b.Run("batched-warmswap", func(b *testing.B) { benchServe(b, true, warmSwap) })
}

// benchServeFleet drives zipf traffic through N gateway replicas behind
// a round-robin front, optionally sharing one in-process verdict cache,
// and reports exact fleet-wide p50/p99. The shared=false/true pair is
// the case for the fleet cache: with it, a hot document is scanned once
// fleet-wide per admission epoch instead of once per replica.
func benchServeFleet(b *testing.B, replicas int, shared bool) {
	const workers = 32
	day := synth.Date(time.August, 5)
	sigs := trainSignatures(b, day)
	docs := benchCorpus(b, day)

	var cache *verdictcache.Cache
	if shared {
		cache = verdictcache.New(0)
	}
	vetters := make([]*Vetter, replicas)
	admits := make([]*Admitter, replicas)
	for i := range admits {
		m, err := kizzle.NewMatcher(sigs)
		if err != nil {
			b.Fatal(err)
		}
		vetters[i] = NewVetter(m)
		vetters[i].SetVersion(1)
		admits[i] = NewAdmitter(vetters[i], workers, 200*time.Microsecond)
		if shared {
			admits[i].UseSharedStore(cache)
		}
		defer admits[i].Close()
	}

	lats := make([][]time.Duration, workers)
	var next atomic.Int64
	var rr atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			zipf := rand.NewZipf(rng, 1.5, 1, uint64(len(docs)-1))
			mine := make([]time.Duration, 0, b.N/workers+1)
			for next.Add(1) <= int64(b.N) {
				doc := docs[zipf.Uint64()]
				admit := admits[int(rr.Add(1))%len(admits)]
				start := time.Now()
				admit.VetBytes(doc)
				mine = append(mine, time.Since(start))
			}
			lats[w] = mine
		}(w)
	}
	wg.Wait()
	b.StopTimer()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) float64 {
		i := int(q * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return float64(all[i]) / 1e3
	}
	b.ReportMetric(quantile(0.50), "p50-us")
	b.ReportMetric(quantile(0.99), "p99-us")
	if shared {
		var hits, reqs int64
		for _, a := range admits {
			m := a.Metrics()
			hits += m["shared_hits"].(int64)
			reqs += m["requests"].(int64)
		}
		if reqs > 0 {
			b.ReportMetric(float64(hits)/float64(reqs), "shared-hits/req")
		}
	}
}

// BenchmarkServeFleet is the multi-replica SLO benchmark: 3 gateway
// replicas behind a round-robin front under zipf traffic, with and
// without the fleet-wide shared verdict cache.
func BenchmarkServeFleet(b *testing.B) {
	b.Run("replicas=3", func(b *testing.B) { benchServeFleet(b, 3, false) })
	b.Run("replicas=3-shared", func(b *testing.B) { benchServeFleet(b, 3, true) })
}
