// Benchmarks regenerating every table and figure of the paper's evaluation
// section (run with `go test -bench=. -benchmem`), plus ablations for the
// design choices called out in DESIGN.md. Shape metrics are attached to the
// benchmark output via b.ReportMetric; the full-resolution tables come from
// `go run ./cmd/evalmonth`.
package kizzle_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"kizzle"
	"kizzle/internal/contentcache"
	"kizzle/internal/ekit"
	"kizzle/internal/evalharness"
	"kizzle/internal/jstoken"
	"kizzle/internal/pipeline"
	"kizzle/internal/shardcoord"
	"kizzle/internal/textdist"
	"kizzle/internal/winnow"
	"kizzle/synth"
)

// harnessWindow runs the evaluation harness over a window of August days at
// bench scale.
func harnessWindow(b *testing.B, fromDay, toDay, benign int, mutate func(*evalharness.Config)) *evalharness.MonthResult {
	b.Helper()
	cfg := evalharness.DefaultConfig()
	cfg.Stream.BenignPerDay = benign
	cfg.Days = nil
	for d := fromDay; d <= toDay; d++ {
		cfg.Days = append(cfg.Days, d)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := evalharness.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig2KitInventory regenerates the Figure 2 CVE table.
func BenchmarkFig2KitInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := evalharness.FormatFig2()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(float64(len(ekit.KitInventory())), "kits")
}

// BenchmarkFig5NuclearEvolution regenerates the three-month Nuclear
// mutation timeline: 13 superficial packer changes, one semantic change,
// two payload events.
func BenchmarkFig5NuclearEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prev := ""
		changes := 0
		for day := ekit.JuneStart; day <= ekit.AugustEnd; day++ {
			cur := ekit.VersionOn(ekit.FamilyNuclear, day).Note
			if cur != prev {
				changes++
				prev = cur
			}
		}
		if changes != len(ekit.NuclearTimeline) {
			b.Fatalf("observed %d packer versions, want %d", changes, len(ekit.NuclearTimeline))
		}
	}
	b.ReportMetric(float64(len(ekit.NuclearTimeline)-1), "packer-changes")
}

// BenchmarkFig6WindowOfVulnerability replays the Angler flip window: AV
// loses roughly half its Angler coverage for ~6 days while Kizzle's
// same-day signatures keep FN near zero.
func BenchmarkFig6WindowOfVulnerability(b *testing.B) {
	var avPeak, kizzlePeak float64
	for i := 0; i < b.N; i++ {
		res := harnessWindow(b, ekit.Date(8, 11), ekit.Date(8, 20), 120, nil)
		avPeak, kizzlePeak = 0, 0
		for _, d := range res.Days {
			total := d.ByFamily["Angler"]
			if total == 0 || d.Day == ekit.Date(8, 13) {
				continue // flip day itself is the trickle, not the window
			}
			if r := float64(d.AVFN["Angler"]) / float64(total); r > avPeak {
				avPeak = r
			}
			if r := float64(d.KizzleFN["Angler"]) / float64(total); r > kizzlePeak {
				kizzlePeak = r
			}
		}
		if avPeak < 0.25 {
			b.Fatalf("AV FN peak %.2f, expected a window of vulnerability", avPeak)
		}
	}
	b.ReportMetric(100*avPeak, "av-fn-peak-%")
	b.ReportMetric(100*kizzlePeak, "kizzle-fn-peak-%")
}

// BenchmarkFig11SimilarityOverTime regenerates the day-over-day unpacked
// similarity series: Nuclear and Angler near 100%, Sweet Orange high with
// rotation dips, RIG noisy around 50%.
func BenchmarkFig11SimilarityOverTime(b *testing.B) {
	cfg := winnow.DefaultConfig()
	avgs := make(map[ekit.Family]float64, len(ekit.Families))
	for i := 0; i < b.N; i++ {
		for _, fam := range ekit.Families {
			sum, n := 0.0, 0
			prev := winnow.Fingerprint(ekit.Payload(fam, ekit.AugustStart), cfg)
			for day := ekit.AugustStart + 1; day <= ekit.AugustEnd; day++ {
				cur := winnow.Fingerprint(ekit.Payload(fam, day), cfg)
				sum += winnow.Overlap(cur, prev)
				prev = cur
				n++
			}
			avgs[fam] = sum / float64(n)
		}
	}
	b.ReportMetric(100*avgs[ekit.FamilyNuclear], "nuclear-%")
	b.ReportMetric(100*avgs[ekit.FamilyAngler], "angler-%")
	b.ReportMetric(100*avgs[ekit.FamilySweetOrange], "sweetorange-%")
	b.ReportMetric(100*avgs[ekit.FamilyRIG], "rig-%")
	if avgs[ekit.FamilyNuclear] < 0.96 || avgs[ekit.FamilyRIG] > 0.8 {
		b.Fatalf("similarity shape off: nuclear %.2f rig %.2f", avgs[ekit.FamilyNuclear], avgs[ekit.FamilyRIG])
	}
}

// BenchmarkFig12SignatureLengths regenerates signature lengths over the
// Nuclear churn window; signatures must stay in the AV-deployable range and
// new ones must be minted on mutation days.
func BenchmarkFig12SignatureLengths(b *testing.B) {
	var maxLen, newSigs float64
	for i := 0; i < b.N; i++ {
		res := harnessWindow(b, ekit.Date(8, 15), ekit.Date(8, 23), 100, nil)
		maxLen, newSigs = 0, 0
		for _, d := range res.Days {
			for _, l := range d.SigLength {
				if float64(l) > maxLen {
					maxLen = float64(l)
				}
			}
			for range d.NewSignature {
				newSigs++
			}
		}
		if maxLen > 2200 {
			b.Fatalf("signature length %d outside Figure 12's range", int(maxLen))
		}
	}
	b.ReportMetric(maxLen, "max-sig-chars")
	b.ReportMetric(newSigs, "new-sigs")
}

// BenchmarkFig13FalseRates regenerates the daily FP/FN comparison over a
// 12-day window spanning the Angler flip.
func BenchmarkFig13FalseRates(b *testing.B) {
	var rates evalharness.Rates
	for i := 0; i < b.N; i++ {
		res := harnessWindow(b, ekit.Date(8, 9), ekit.Date(8, 20), 200, nil)
		rates = res.MonthRates()
		if rates.KizzleFN >= 0.05 {
			b.Fatalf("Kizzle FN %.3f, headline requires < 5%%", rates.KizzleFN)
		}
	}
	b.ReportMetric(100*rates.KizzleFP, "kizzle-fp-%")
	b.ReportMetric(100*rates.KizzleFN, "kizzle-fn-%")
	b.ReportMetric(100*rates.AVFP, "av-fp-%")
	b.ReportMetric(100*rates.AVFN, "av-fn-%")
}

// BenchmarkFig14AbsoluteCounts regenerates the per-kit FP/FN count table
// over a window; ordering must match the paper (Angler dominates ground
// truth, RIG is Kizzle's hardest family).
func BenchmarkFig14AbsoluteCounts(b *testing.B) {
	var sum evalharness.Totals
	for i := 0; i < b.N; i++ {
		res := harnessWindow(b, ekit.Date(8, 16), ekit.Date(8, 27), 150, nil)
		totals := res.FamilyTotals()
		sum = totals[len(totals)-1]
		byFam := make(map[string]evalharness.Totals)
		for _, t := range totals {
			byFam[t.Family] = t
		}
		if byFam["Angler"].GroundTruth <= byFam["RIG"].GroundTruth {
			b.Fatal("ground-truth ordering broken")
		}
	}
	b.ReportMetric(float64(sum.GroundTruth), "ground-truth")
	b.ReportMetric(float64(sum.KizzleFP), "kizzle-fp")
	b.ReportMetric(float64(sum.KizzleFN), "kizzle-fn")
	b.ReportMetric(float64(sum.AVFP), "av-fp")
	b.ReportMetric(float64(sum.AVFN), "av-fn")
}

// BenchmarkFig15PluginDetectOverlap regenerates the representative false
// positive: the benign PluginDetect library's winnow overlap with Nuclear
// (the paper measured 79%).
func BenchmarkFig15PluginDetectOverlap(b *testing.B) {
	cfg := winnow.DefaultConfig()
	nuclear := winnow.Fingerprint(ekit.Payload(ekit.FamilyNuclear, ekit.Date(8, 20)), cfg)
	var overlap float64
	for i := 0; i < b.N; i++ {
		pd := ekit.BenignSample(ekit.BenignPluginDetect, ekit.Date(8, 20), 0)
		overlap = winnow.Overlap(winnow.Fingerprint(pd, cfg), nuclear)
	}
	if overlap < 0.6 || overlap > 0.95 {
		b.Fatalf("PluginDetect/Nuclear overlap %.2f outside the Figure 15 regime", overlap)
	}
	b.ReportMetric(100*overlap, "overlap-%")
}

// BenchmarkPipelineThroughput measures one full pipeline day (the paper's
// runs took ~90 minutes for up to 500k samples on 50 machines; this reports
// single-machine throughput at evaluation scale).
func BenchmarkPipelineThroughput(b *testing.B) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 400
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	day := ekit.Date(8, 5)
	samples := stream.Day(day)
	inputs := make([]pipeline.Input, len(samples))
	var bytes int64
	for i, s := range samples {
		inputs[i] = pipeline.Input{ID: s.ID, Content: s.Content}
		bytes += int64(len(s.Content))
	}
	corpus := pipeline.NewCorpus(winnow.DefaultConfig(), 16)
	for _, fam := range ekit.Families {
		corpus.Add(fam.String(), ekit.Payload(fam, day-1))
	}
	pcfg := pipeline.DefaultConfig()
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Process(inputs, corpus, pcfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(inputs)), "samples/run")
}

// BenchmarkWebkitPipelineThroughput measures the second ingest workload
// end to end: one synthetic phishing-kit day (HTML/PHP/JS bundles)
// compiled under the webkit profile through the public compiler — the
// apples-to-apples counterpart of BenchmarkPipelineThroughput for
// mixed-fleet capacity planning.
func BenchmarkWebkitPipelineThroughput(b *testing.B) {
	cfg := synth.DefaultWebkitConfig()
	cfg.BenignPerDay = 100
	stream, err := synth.NewWebkitStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const day = 35 // mid-epoch for every kit family
	var (
		batch []kizzle.Sample
		bytes int64
	)
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
		bytes += int64(len(s.Content))
	}
	c := kizzle.New(kizzle.WithProfile("webkit"), kizzle.WithSignatureSlack(2))
	for _, fam := range synth.WebkitKits() {
		c.AddKnown("webkit/"+fam.String(), synth.WebkitPayload(fam, day-1))
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	var sigs int
	for i := 0; i < b.N; i++ {
		res, err := c.Process(batch)
		if err != nil {
			b.Fatal(err)
		}
		sigs = len(res.Signatures)
	}
	b.ReportMetric(float64(len(batch)), "samples/run")
	b.ReportMetric(float64(sigs), "signatures/run")
}

// BenchmarkTokenize measures the tokenization stage over one day of
// documents: the classic lex-then-abstract composition against the
// streaming symbol-only path the pipeline now uses.
func BenchmarkTokenize(b *testing.B) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 300
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	samples := stream.Day(ekit.Date(8, 7))
	var bytes int64
	for _, s := range samples {
		bytes += int64(len(s.Content))
	}
	b.Run("batch", func(b *testing.B) {
		b.SetBytes(bytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range samples {
				jstoken.Abstract(jstoken.LexDocument(s.Content))
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		var scratch jstoken.Scratch
		b.SetBytes(bytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range samples {
				scratch.LexDocumentSymbols(s.Content)
			}
		}
	})
	b.ReportMetric(float64(len(samples)), "docs/run")
}

// BenchmarkLabelClusters isolates the cluster-labeling stage (unpack +
// winnow fingerprint + corpus sweep) by running the full pipeline and
// reporting the label stage's share.
func BenchmarkLabelClusters(b *testing.B) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 300
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	day := ekit.Date(8, 7)
	samples := stream.Day(day)
	inputs := make([]pipeline.Input, len(samples))
	for i, s := range samples {
		inputs[i] = pipeline.Input{ID: s.ID, Content: s.Content}
	}
	corpus := pipeline.NewCorpus(winnow.DefaultConfig(), 16)
	for _, fam := range ekit.Families {
		for d := day - 4; d < day; d++ {
			corpus.Add(fam.String(), ekit.Payload(fam, d))
		}
	}
	pcfg := pipeline.DefaultConfig()
	b.ReportAllocs()
	var labelUS, clusters float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.Process(inputs, corpus, pcfg)
		if err != nil {
			b.Fatal(err)
		}
		labelUS = float64(res.Stats.Label.Microseconds())
		clusters = float64(res.Stats.Clusters)
	}
	b.ReportMetric(labelUS, "label-us")
	b.ReportMetric(clusters, "clusters")
}

// distinctDay returns one pipeline input per distinct document of a
// stream day.
func distinctDay(b *testing.B, day, benign int) []pipeline.Input {
	b.Helper()
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = benign
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	samples := stream.Day(day)
	inputs := make([]pipeline.Input, len(samples))
	for i, s := range samples {
		inputs[i] = pipeline.Input{ID: s.ID, Content: s.Content}
	}
	return inputs
}

// replicate models observation multiplicity — many users fetch the same
// page, so the provider ingests each distinct document several times.
func replicate(distinct []pipeline.Input, dupFactor int) []pipeline.Input {
	out := make([]pipeline.Input, 0, len(distinct)*dupFactor)
	for r := 0; r < dupFactor; r++ {
		for _, in := range distinct {
			out = append(out, pipeline.Input{
				ID:      fmt.Sprintf("%s#%d", in.ID, r),
				Content: in.Content,
			})
		}
	}
	return out
}

// BenchmarkPipelineDayOverDay measures the content cache's economics: the
// cold run processes day N with an empty cache; the warm run processes a
// day N+1 whose content overlaps day N's by ~85% (the Figure 11 regime —
// RIG aside, kit bodies churn slowly, and benign content barely moves)
// against a cache primed with day N. The warm day pays tokenization,
// unpacking, and fingerprinting only for its novel 15%.
func BenchmarkPipelineDayOverDay(b *testing.B) {
	const (
		benign    = 150
		dupFactor = 3
		overlap   = 0.85
	)
	day := ekit.Date(8, 9)
	day1d := distinctDay(b, day, benign)
	nextd := distinctDay(b, day+1, benign)
	// Day N+1: ~85% of day N's distinct content is re-observed, the rest
	// is novel content drawn from the next stream day. Both days carry
	// the same observation multiplicity over same-sized distinct sets.
	carried := int(float64(len(day1d)) * overlap)
	novel := len(day1d) - carried
	if novel > len(nextd) {
		b.Fatalf("next day has %d distinct docs, need %d novel", len(nextd), novel)
	}
	day2d := append(append([]pipeline.Input(nil), day1d[:carried]...), nextd[:novel]...)
	day1 := replicate(day1d, dupFactor)
	day2 := replicate(day2d, dupFactor)

	corpus := pipeline.NewCorpus(winnow.DefaultConfig(), 16)
	for _, fam := range ekit.Families {
		corpus.Add(fam.String(), ekit.Payload(fam, day-1))
	}
	var bytes int64
	for _, in := range day1 {
		bytes += int64(len(in.Content))
	}

	run := func(b *testing.B, inputs []pipeline.Input, cache *contentcache.Cache) pipeline.Stats {
		cfg := pipeline.DefaultConfig()
		cfg.Cache = cache
		res, err := pipeline.Process(inputs, corpus, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.Stats
	}

	b.Run("cold", func(b *testing.B) {
		var stats pipeline.Stats
		b.SetBytes(bytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stats = run(b, day1, contentcache.New(0))
		}
		b.ReportMetric(float64(stats.UniqueDocuments), "unique-docs")
	})
	b.Run("warm", func(b *testing.B) {
		var stats pipeline.Stats
		b.SetBytes(bytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache := contentcache.New(0)
			run(b, day1, cache) // yesterday primes the cache
			b.StartTimer()
			stats = run(b, day2, cache) // today pays only for new content
		}
		hitRate := 0.0
		if l := stats.CacheHits + stats.CacheMisses; l > 0 {
			hitRate = 100 * float64(stats.CacheHits) / float64(l)
		}
		b.ReportMetric(hitRate, "cache-hit-%")
		b.ReportMetric(float64(stats.UniqueDocuments), "unique-docs")
	})
}

// BenchmarkPipelineSharded measures horizontal scaling of the clustering
// AND reduce stages through the shard coordinator: N loopback workers,
// each pinned to one goroutine (modeling one machine of the paper's
// 50-machine layout), with the coordinator's own stages also
// single-threaded so any speedup comes from distribution alone. The full
// distributed path runs — JSON marshalling, the worker HTTP handler,
// response decoding — minus only the sockets.
//
// Two dispatch modes run at each fleet size:
//
//   - batch: partitions dispatched in one batch after dedup, pre-reduce
//     and every reduce sweep serial on the coordinator (the pre-PR4 cost
//     model);
//   - stream: partitions dispatched as dedup emits them and the reduce's
//     distance sweeps fanned out to the fleet as edge jobs.
//
// Work units are dispatched sequentially while the coordinator simulates
// the fleet schedule (arrival-aware earliest-free-shard assignment with a
// barrier per reduce wave), so the modeled critical path — the wall-clock
// an N-machine fleet would need for clustering + reduce — is undistorted
// by CPU time-slicing on a small host; ns/op stays the single-host
// wall-clock. fleet-critical-us is that model:
//
//	batch:  dedup (serial host) + busiest shard + serial coordinator
//	        pre-reduce + serial reduce
//	stream: schedule makespan (arrivals overlapped, edge waves fleet-wide)
//	        + the coordinator's serial reduce residue
//
// Caches are cold every iteration — the honest daily-batch regime, in
// which the reduce's distance sweeps, not the partition clustering, are
// the fleet's serial floor (ROADMAP PR 3 "Next targets"); workers carry
// no verdict cache at all. Workers do carry resident sets, so streamed
// runs exercise the locality layer: edge jobs route to the shard that
// clustered their rows and ship 20-byte content keys over the v3 wire
// (wire-mb / edge-wire-mb report the resulting traffic per run).
//
// The synthetic stream's dedup collapses a plain day to ~50 unique
// shapes, which leaves too little clustering work to distribute, so the
// workload expands each sample into junk-insertion variants (the §V
// attacker mutation): hundreds of distinct-but-related token sequences —
// the regime where the paper needed 50 machines.
func BenchmarkPipelineSharded(b *testing.B) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 40
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	day := ekit.Date(8, 5)
	const variants = 4
	var inputs []pipeline.Input
	var bytes int64
	seed := int64(0)
	for _, s := range stream.Day(day) {
		for v := 0; v < variants; v++ {
			seed++
			doc := junkVariant(s.Content, seed, 0.12)
			inputs = append(inputs, pipeline.Input{ID: fmt.Sprintf("%s#%d", s.ID, v), Content: doc})
			bytes += int64(len(doc))
		}
	}
	corpus := pipeline.NewCorpus(winnow.DefaultConfig(), 16)
	for _, fam := range ekit.Families {
		corpus.Add(fam.String(), ekit.Payload(fam, day-1))
	}
	criticalBy := make(map[string]time.Duration)
	for _, mode := range []string{"batch", "stream"} {
		for _, shards := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("mode=%s/shards=%d", mode, shards), func(b *testing.B) {
				workers := make([]*shardcoord.Worker, shards)
				for i := range workers {
					workers[i] = shardcoord.NewWorker(
						shardcoord.WithWorkerParallelism(1),
						shardcoord.WithWorkerResidentBudget(64<<20))
				}
				coord := shardcoord.NewCoordinator(shardcoord.NewLoopback(workers),
					shardcoord.WithSequentialDispatch())
				pcfg := pipeline.DefaultConfig()
				pcfg.Workers = 1
				pcfg.PartitionSize = 12 // many small partitions so the shared queue balances
				pcfg.Clusterer = coord
				pcfg.BatchDispatch = mode == "batch"
				coord.ScheduleTotals() // reset
				var stats pipeline.Stats
				var serial time.Duration
				b.SetBytes(bytes)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pcfg.Cache = contentcache.New(256 << 20) // cold day
					res, err := pipeline.Process(inputs, corpus, pcfg)
					if err != nil {
						b.Fatal(err)
					}
					stats = res.Stats
					if pcfg.BatchDispatch {
						// Fleet timeline: dedup, then the batch, then the
						// serial coordinator-side pre-reduce of every
						// partition result, then the whole reduce serial on
						// the coordinator.
						serial += res.Stats.Tokenize + res.Stats.CoordPreReduce + res.Stats.Reduce
					} else {
						// Arrivals and edge waves are inside the schedule
						// model; only the reduce residue is serial.
						serial += res.Stats.Reduce - res.Stats.ReduceDispatch
					}
				}
				b.StopTimer()
				sched := coord.ScheduleTotals()
				critical := (sched.Makespan + serial) / time.Duration(b.N)
				criticalBy[b.Name()] = critical
				b.ReportMetric(float64(critical.Microseconds()), "fleet-critical-us")
				if base, ok := criticalBy[strings.Replace(b.Name(), "shards="+fmt.Sprint(shards), "shards=1", 1)]; ok && critical > 0 {
					b.ReportMetric(float64(base)/float64(critical), "sharded-speedup")
				}
				if base, ok := criticalBy[strings.Replace(b.Name(), "mode=stream", "mode=batch", 1)]; ok && critical > 0 && mode == "stream" {
					b.ReportMetric(float64(base)/float64(critical), "vs-batch")
				}
				b.ReportMetric(float64(sched.EdgeUnits)/float64(b.N), "edge-jobs")
				b.ReportMetric(float64(stats.UniqueSequences), "uniques")
				b.ReportMetric(float64(stats.Partitions), "partitions")
				b.ReportMetric(float64(stats.WireBytes)/1e6, "wire-mb")
				b.ReportMetric(float64(stats.EdgeWireBytes)/1e6, "edge-wire-mb")
			})
		}
	}
}

// BenchmarkClusterVsReduce quantifies the paper's observation that
// clustering takes the majority of the time and the reduce step is the
// serial bottleneck.
func BenchmarkClusterVsReduce(b *testing.B) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 400
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	day := ekit.Date(8, 6)
	samples := stream.Day(day)
	inputs := make([]pipeline.Input, len(samples))
	for i, s := range samples {
		inputs[i] = pipeline.Input{ID: s.ID, Content: s.Content}
	}
	corpus := pipeline.NewCorpus(winnow.DefaultConfig(), 16)
	for _, fam := range ekit.Families {
		corpus.Add(fam.String(), ekit.Payload(fam, day-1))
	}
	pcfg := pipeline.DefaultConfig()
	pcfg.PartitionSize = 15 // stress the reduce step
	var stats pipeline.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.Process(inputs, corpus, pcfg)
		if err != nil {
			b.Fatal(err)
		}
		stats = res.Stats
	}
	b.ReportMetric(float64(stats.Cluster.Microseconds()), "cluster-us")
	b.ReportMetric(float64(stats.Reduce.Microseconds()), "reduce-us")
	b.ReportMetric(float64(stats.Partitions), "partitions")
}

// --- Ablations ---

// BenchmarkAblationEps sweeps the DBSCAN threshold around the paper's 0.10:
// too small shatters kit clusters, too large merges distinct families.
func BenchmarkAblationEps(b *testing.B) {
	day := ekit.Date(8, 5)
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 150
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	samples := stream.Day(day)
	inputs := make([]pipeline.Input, len(samples))
	for i, s := range samples {
		inputs[i] = pipeline.Input{ID: s.ID, Content: s.Content}
	}
	corpus := pipeline.NewCorpus(winnow.DefaultConfig(), 16)
	for _, fam := range ekit.Families {
		corpus.Add(fam.String(), ekit.Payload(fam, day-1))
	}
	for _, eps := range []float64{0.02, 0.05, 0.10, 0.20, 0.40} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			var clusters, malicious int
			pcfg := pipeline.DefaultConfig()
			pcfg.Eps = eps
			for i := 0; i < b.N; i++ {
				res, err := pipeline.Process(inputs, corpus, pcfg)
				if err != nil {
					b.Fatal(err)
				}
				clusters, malicious = res.Stats.Clusters, res.Stats.Malicious
			}
			b.ReportMetric(float64(clusters), "clusters")
			b.ReportMetric(float64(malicious), "malicious")
		})
	}
}

// BenchmarkAblationSignatureCap sweeps the common-run token cap (the paper
// uses 200).
func BenchmarkAblationSignatureCap(b *testing.B) {
	day := synth.Date(8, 5)
	for _, cap := range []int{50, 100, 200, 400} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			var maxTokens, sigChars float64
			for i := 0; i < b.N; i++ {
				c := kizzle.New(kizzle.WithSignatureTokens(10, cap))
				for _, fam := range synth.Kits() {
					c.AddKnown(fam.String(), synth.Payload(fam, day-1))
				}
				scfg := synth.DefaultConfig()
				scfg.BenignPerDay = 60
				stream, err := synth.NewStream(scfg)
				if err != nil {
					b.Fatal(err)
				}
				var batch []kizzle.Sample
				for _, s := range stream.Day(day) {
					batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
				}
				res, err := c.Process(batch)
				if err != nil {
					b.Fatal(err)
				}
				maxTokens, sigChars = 0, 0
				for _, sig := range res.Signatures {
					if float64(sig.TokenLength()) > maxTokens {
						maxTokens = float64(sig.TokenLength())
					}
					sigChars += float64(sig.Length())
				}
				if maxTokens > float64(cap) {
					b.Fatalf("signature %d tokens exceeds cap %d", int(maxTokens), cap)
				}
			}
			b.ReportMetric(maxTokens, "max-tokens")
			b.ReportMetric(sigChars, "total-chars")
		})
	}
}

// BenchmarkAblationSlack sweeps the signature length slack extension:
// next-day coverage rises with slack (0 is the paper's exact-lengths rule).
func BenchmarkAblationSlack(b *testing.B) {
	day := synth.Date(8, 5)
	scfg := synth.DefaultConfig()
	scfg.BenignPerDay = 80
	stream, err := synth.NewStream(scfg)
	if err != nil {
		b.Fatal(err)
	}
	var batch []kizzle.Sample
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
	}
	nextDay := stream.MaliciousDay(day + 1)
	for _, slack := range []int{0, 2, 6} {
		b.Run(fmt.Sprintf("slack=%d", slack), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				c := kizzle.New(kizzle.WithSignatureSlack(slack))
				for _, fam := range synth.Kits() {
					c.AddKnown(fam.String(), synth.Payload(fam, day-1))
				}
				res, err := c.Process(batch)
				if err != nil {
					b.Fatal(err)
				}
				m, err := kizzle.NewMatcher(res.Signatures)
				if err != nil {
					b.Fatal(err)
				}
				hit := 0
				for _, s := range nextDay {
					if m.Detects(s.Content) {
						hit++
					}
				}
				rate = float64(hit) / float64(len(nextDay))
			}
			b.ReportMetric(100*rate, "nextday-%")
		})
	}
}

// BenchmarkAblationTokenVsRaw demonstrates why clustering runs on abstract
// tokens: two same-day Nuclear samples are within eps in token space but
// far apart in raw byte space (per-sample keys re-encrypt the payload).
func BenchmarkAblationTokenVsRaw(b *testing.B) {
	day := ekit.Date(8, 5)
	payload := ekit.Payload(ekit.FamilyNuclear, day)
	s1 := ekit.Pack(ekit.FamilyNuclear, payload, day, 0)
	s2 := ekit.Pack(ekit.FamilyNuclear, payload, day, 1)
	tok1 := jstoken.Abstract(jstoken.Lex(s1))
	tok2 := jstoken.Abstract(jstoken.Lex(s2))
	raw1 := bytesAsSymbols(s1)
	raw2 := bytesAsSymbols(s2)
	var tokDist, rawDist float64
	for i := 0; i < b.N; i++ {
		tokDist = textdist.Normalized(tok1, tok2)
		rawDist = textdist.Normalized(raw1, raw2)
	}
	if tokDist > 0.10 {
		b.Fatalf("token distance %.3f should be within the 0.10 clustering eps", tokDist)
	}
	if rawDist < 0.3 {
		b.Fatalf("raw distance %.3f should be far outside eps", rawDist)
	}
	b.ReportMetric(tokDist, "token-dist")
	b.ReportMetric(rawDist, "raw-dist")
}

func bytesAsSymbols(s string) []jstoken.Symbol {
	out := make([]jstoken.Symbol, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = jstoken.Symbol(s[i])
	}
	return out
}

// BenchmarkAblationWinnow sweeps the winnowing parameters used for cluster
// labeling and reports the margin between a true Nuclear match and the
// benign PluginDetect near-miss.
func BenchmarkAblationWinnow(b *testing.B) {
	day := ekit.Date(8, 20)
	nuclear := ekit.Payload(ekit.FamilyNuclear, day)
	nuclearPrev := ekit.Payload(ekit.FamilyNuclear, day-1)
	pd := ekit.BenignSample(ekit.BenignPluginDetect, day, 0)
	for _, cfg := range []winnow.Config{{K: 3, Window: 4}, {K: 5, Window: 8}, {K: 8, Window: 16}} {
		b.Run(fmt.Sprintf("k=%d,w=%d", cfg.K, cfg.Window), func(b *testing.B) {
			var self, fp float64
			for i := 0; i < b.N; i++ {
				ref := winnow.Fingerprint(nuclearPrev, cfg)
				self = winnow.Overlap(winnow.Fingerprint(nuclear, cfg), ref)
				fp = winnow.Overlap(winnow.Fingerprint(pd, cfg), ref)
			}
			b.ReportMetric(100*self, "true-match-%")
			b.ReportMetric(100*fp, "benign-nearmiss-%")
			b.ReportMetric(100*(self-fp), "margin-%")
		})
	}
}

// BenchmarkAblationJunkAttack pits the §V junk-insertion evasion against
// single-run and multi-sequence signatures: the attacker sprays random
// statements between the packer's operations; fresh-variant detection is
// reported for both signature forms.
func BenchmarkAblationJunkAttack(b *testing.B) {
	day := synth.Date(8, 5)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 0
	stream, err := synth.NewStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	junk := func(doc string, seed int64) string { return junkVariant(doc, seed, 0.4) }
	var train, fresh []string
	i := int64(0)
	for _, s := range stream.Day(day) {
		if s.Family != synth.Angler {
			continue
		}
		i++
		if len(train) < 10 {
			train = append(train, junk(s.Content, i))
		} else if len(fresh) < 10 {
			fresh = append(fresh, junk(s.Content, 1000+i))
		}
	}
	var singleRate, multiRate float64
	for n := 0; n < b.N; n++ {
		// Single-run signature over the junked cluster.
		singleHits := 0
		c := kizzle.New(kizzle.WithSignatureSlack(2))
		for _, fam := range synth.Kits() {
			c.AddKnown(fam.String(), synth.Payload(fam, day-1))
		}
		batch := make([]kizzle.Sample, len(train))
		for j, d := range train {
			batch[j] = kizzle.Sample{ID: fmt.Sprintf("t%d", j), Content: d}
		}
		res, err := c.Process(batch)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Signatures) > 0 {
			m, err := kizzle.NewMatcher(res.Signatures)
			if err != nil {
				b.Fatal(err)
			}
			for _, d := range fresh {
				if m.Detects(d) {
					singleHits++
				}
			}
		}
		singleRate = float64(singleHits) / float64(len(fresh))

		// Multi-sequence signature over the same cluster.
		multiHits := 0
		if multi, err := kizzle.GenerateMulti("Angler", train, kizzle.WithMultiSlack(2)); err == nil {
			mm, err := kizzle.NewMultiMatcher([]kizzle.MultiSignature{multi})
			if err != nil {
				b.Fatal(err)
			}
			for _, d := range fresh {
				if mm.Detects(d) {
					multiHits++
				}
			}
		}
		multiRate = float64(multiHits) / float64(len(fresh))
	}
	b.ReportMetric(100*singleRate, "single-run-%")
	b.ReportMetric(100*multiRate, "multi-seq-%")
	if multiRate < singleRate {
		b.Fatalf("multi-sequence detection %.2f below single-run %.2f", multiRate, singleRate)
	}
}
