#!/bin/sh
# covergate.sh — run the full test suite with coverage and fail if total
# statement coverage drops below the committed floor.
#
#   scripts/covergate.sh            gate against COVER_FLOOR
#   COVER_FLOOR=75.0 scripts/covergate.sh   override the floor
#
# The floor ratchets: it is set just under the measured total at the time
# a PR lands, so new subsystems cannot land untested without an explicit,
# reviewed floor change. Writes coverage.out (CI uploads it as an
# artifact); inspect with `go tool cover -html=coverage.out`.
set -eu

# Measured total at PR 9: 84.2% (stable across repeat runs). The floor
# sits just under to absorb run-to-run jitter from timing-dependent
# branches, not to leave headroom for regressions — raise it when
# coverage rises.
FLOOR="${COVER_FLOOR:-83.9}"
PROFILE="${COVER_PROFILE:-coverage.out}"

go test -coverprofile="$PROFILE" ./...

TOTAL="$(go tool cover -func="$PROFILE" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')"
if [ -z "$TOTAL" ]; then
    echo "covergate: could not read total coverage from $PROFILE" >&2
    exit 2
fi
echo "covergate: total statement coverage ${TOTAL}% (floor ${FLOOR}%)"
awk -v total="$TOTAL" -v floor="$FLOOR" 'BEGIN {
    if (total + 0 < floor + 0) {
        printf "covergate: coverage %.1f%% fell below the floor %.1f%%\n", total, floor
        exit 1
    }
}'
