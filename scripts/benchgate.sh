#!/bin/sh
# benchgate.sh — run the bench smoke set and gate it against the
# committed baseline.
#
#   scripts/benchgate.sh gate       compare medians vs BENCH_BASELINE.json
#                                   (fails on >tolerance regression) and
#                                   write BENCH_CURRENT.json for the CI
#                                   artifact upload
#   scripts/benchgate.sh baseline   refresh BENCH_BASELINE.json in place
#   scripts/benchgate.sh snapshot F write the run to file F (trajectory
#                                   snapshots like BENCH_PR4.json)
#
# Environment knobs: BENCH_COUNT (runs per benchmark, default 5; medians
# absorb outliers), BENCH_TOLERANCE (default 0.25 — sized for shared CI
# runners; local boxes can tighten it).
set -eu

MODE="${1:-gate}"
COUNT="${BENCH_COUNT:-5}"
TOLERANCE="${BENCH_TOLERANCE:-0.25}"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

# The bench smoke set: every perf-critical benchmark the README/ROADMAP
# numbers come from. Microsecond-scale benchmarks get hundreds of
# iterations — 10x-style smoke counts are fine for "does it still run"
# but far too noisy to gate on; the big pipeline benchmarks amortize
# their noise over long runs and stay at small counts. -trimpath keeps
# the bench binaries reproducible.
run_benches() {
    export GOFLAGS="${GOFLAGS:--trimpath}"
    go test -run=NONE -count="$COUNT" -bench='^BenchmarkScan$' -benchtime=300x ./internal/sigmatch/
    go test -run=NONE -count="$COUNT" -bench='^BenchmarkCluster1000$' -benchtime=50x ./internal/dbscan/
    go test -run=NONE -count="$COUNT" -bench='^BenchmarkFingerprint(Scratch)?$' -benchtime=300x ./internal/winnow/
    go test -run=NONE -count="$COUNT" -bench='^BenchmarkLexSymbols$' -benchtime=200x ./internal/jstoken/
    go test -run=NONE -count="$COUNT" -bench='^BenchmarkTokenize$' -benchtime=10x .
    go test -run=NONE -count="$COUNT" -bench='^BenchmarkPipelineThroughput$' -benchtime=3x .
    go test -run=NONE -count="$COUNT" -bench='^BenchmarkWebkitPipelineThroughput$' -benchtime=3x .
    go test -run=NONE -count="$COUNT" -bench='^BenchmarkPipelineDayOverDay$' -benchtime=10x .
    go test -run=NONE -count="$COUNT" -bench='^BenchmarkPipelineSharded$' -benchtime=1x .
    go test -run=NONE -count="$COUNT" -bench='^BenchmarkMatcherRebuild$' -benchtime=300x .
    go test -run=NONE -count="$COUNT" -bench='^BenchmarkRecompile$' -benchtime=10x .
    # The serving-tier SLO benchmark: its p50-us/p99-us custom metrics are
    # gated alongside ns/op (benchgate treats p50-*/p99-* as SLOs). Long
    # enough per run that the 32-worker admission windows fill.
    go test -run=NONE -count="$COUNT" -bench='^BenchmarkServe$' -benchtime=20000x ./gateway/
    # The fleet tier: 3 round-robin replicas with and without the shared
    # verdict cache; shared-hits/req is recorded, p50/p99 are gated.
    go test -run=NONE -count="$COUNT" -bench='^BenchmarkServeFleet$' -benchtime=10000x ./gateway/
}

# Write to the file directly (not via `... | tee`, whose exit status
# would mask a failing bench run) so a compile error or a tripped bench
# guard aborts the script instead of silently writing a partial baseline.
run_benches >"$OUT"
cat "$OUT"

case "$MODE" in
gate)
    go run ./cmd/benchgate -baseline BENCH_BASELINE.json -tolerance "$TOLERANCE" \
        -write BENCH_CURRENT.json -note "gate run" <"$OUT"
    ;;
baseline)
    go run ./cmd/benchgate -write BENCH_BASELINE.json -note "baseline (refresh with: make bench-baseline)" <"$OUT"
    ;;
snapshot)
    go run ./cmd/benchgate -write "${2:?snapshot file required}" -note "trajectory snapshot" <"$OUT"
    ;;
*)
    echo "benchgate.sh: unknown mode '$MODE' (gate|baseline|snapshot)" >&2
    exit 2
    ;;
esac
