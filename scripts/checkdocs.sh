#!/bin/sh
# checkdocs.sh fails when any package lacks a package comment, keeping
# `go doc` useful for every package (ISSUE 3's documentation invariant).
set -eu
cd "$(dirname "$0")/.."
missing=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)
if [ -n "$missing" ]; then
    echo "packages missing a package comment:" >&2
    echo "$missing" >&2
    exit 1
fi
echo "all packages have package comments"
