// Package kizzle is a signature compiler for detecting exploit kits,
// reproducing the system described in "Kizzle: A Signature Compiler for
// Detecting Exploit Kits" (Stock, Livshits, Zorn — DSN 2016).
//
// Kizzle ingests batches of "grayware" JavaScript/HTML samples, clusters
// them by tokenized structure (DBSCAN over normalized token edit distance),
// labels malicious clusters by unpacking a prototype and winnow-matching it
// against a corpus of known unpacked exploit-kit payloads, and compiles a
// structural regex signature for every malicious cluster. Signatures can be
// deployed with a Matcher (in a browser, on the desktop, or server-side).
//
// Basic usage:
//
//	c := kizzle.New()
//	c.AddKnown("Nuclear", unpackedNuclearPayload)
//	res, err := c.Process(samples)
//	// res.Signatures → deploy:
//	m, err := kizzle.NewMatcher(res.Signatures)
//	if m.Detects(incomingDocument) { block() }
//
// # Scaling knobs
//
// The compiler is built for daily provider-scale batches; the levers, in
// the order they usually matter:
//
//   - WithWorkers sets in-process parallelism for tokenization,
//     clustering, and labeling (default GOMAXPROCS).
//   - WithCacheBytes bounds the content-addressed cache carried across
//     Process calls: day N+1 re-tokenizes, re-unpacks, re-fingerprints,
//     and re-verifies pair distances only for content it has not seen.
//     SaveCache / LoadCache persist that cache to disk, so a restarted
//     process keeps the warm-day economics.
//   - WithShardWorkers dispatches the clustering stage — the dominant
//     cost of a cold batch — to remote cmd/kizzleshard workers over HTTP,
//     the paper's 50-machine layout. Results are identical to
//     single-process operation.
//   - WithPartitionSize controls the clustering work-unit size; smaller
//     partitions balance better across shard workers at slightly more
//     reduce-step work.
//
// On the deployment side, Matcher.ScanAll scans batches across a worker
// pool, and MatcherCache rebuilds a Matcher incrementally when only some
// families' signatures changed — the publisher's republish path.
//
// The labeling thresholds (WithThreshold, WithDefaultThreshold) and
// signature shape (WithSignatureTokens, WithSignatureSlack) follow the
// paper's §V tuning discussion; defaults reproduce the evaluation.
package kizzle
